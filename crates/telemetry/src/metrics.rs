//! Lock-free metric primitives: counters, gauges and a bounded streaming
//! histogram.
//!
//! Everything here is recordable from any number of threads through `&self`
//! with nothing but relaxed atomic arithmetic — no locks, no allocation —
//! so the packet path can afford to call [`StreamingHistogram::record`] per
//! packet. Reads (`percentile`, `summary`, sums) are also `&self`: they
//! snapshot the atomics, so a summary can be computed *while* writers are
//! still recording (the live-monitoring requirement the exact
//! sort-on-read histogram in `chc_sim` cannot meet).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Counter {
        Counter(AtomicU64::new(self.get()))
    }
}

/// A last-write-wins instantaneous value (ring depth, rate, watermark).
/// Stored as `f64` bits so the same type carries both integer depths and
/// fractional rates.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Clone for Gauge {
    fn clone(&self) -> Gauge {
        let g = Gauge::new();
        g.set(self.get());
        g
    }
}

/// Sub-buckets per power-of-two octave: 2^5 = 32 buckets per doubling keeps
/// the relative quantization error of any recorded value under 1/32 ≈ 3.1%.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Values below `SUB` get one exact bucket each; each of the remaining
/// `64 - SUB_BITS` octaves gets `SUB` buckets.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Bucket index of a value (log2 bucketing with linear sub-buckets, the
/// HdrHistogram layout).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let octave = msb - SUB_BITS as usize;
        let sub = (v >> (msb - SUB_BITS as usize)) as usize - SUB;
        SUB + octave * SUB + sub
    }
}

/// Lowest value that maps to bucket `i` (inverse of [`bucket_index`]).
#[inline]
fn bucket_low(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let octave = (i - SUB) / SUB;
        let sub = (i - SUB) % SUB;
        ((SUB + sub) as u64) << octave
    }
}

/// First value *above* bucket `i` (its exclusive upper bound).
#[inline]
fn bucket_high(i: usize) -> u64 {
    if i + 1 < BUCKETS {
        bucket_low(i + 1)
    } else {
        u64::MAX
    }
}

/// A bounded, lock-free, log2-bucketed histogram of `u64` samples
/// (typically nanoseconds).
///
/// * `record` is wait-free: one relaxed `fetch_add` on a bucket plus the
///   count/sum/min/max atomics — no allocation, ever, which is what lets it
///   ride the packet hot path (unlike `chc_sim::Histogram`, which stores
///   every sample and sorts millions of entries on read).
/// * Memory is a fixed ~15 KiB regardless of sample count.
/// * Percentiles are estimates with ≤ ~3.1% relative quantization error
///   (linear interpolation inside a 1/32-octave bucket); `count`, `sum`,
///   `min` and `max` are exact.
pub struct StreamingHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for StreamingHistogram {
    fn default() -> StreamingHistogram {
        StreamingHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> StreamingHistogram {
        StreamingHistogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` samples of the same value with one round of atomics (used
    /// when a batch's cost is amortized evenly over its packets).
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        // min/max rarely move once warm: a plain load guards the CAS so the
        // common path issues no read-modify-write (fetch_min/fetch_max
        // compile to CAS loops on x86 even when the value is unchanged).
        let mut cur = self.min.load(Ordering::Relaxed);
        while v < cur {
            match self
                .min
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.max.load(Ordering::Relaxed);
        while v > cur {
            match self
                .max
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Alias for [`StreamingHistogram::count`] as a `usize`, mirroring the
    /// exact histogram's API.
    pub fn len(&self) -> usize {
        self.count() as usize
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Exact largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimated value at percentile `p` in `[0, 100]`, interpolated inside
    /// the matching bucket and clamped to the exact observed min/max.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let frac = (rank - cum) as f64 / c as f64;
                let low = bucket_low(i);
                let high = bucket_high(i).min(self.max().max(low + 1));
                let v = low as f64 + frac * (high - low) as f64;
                return (v as u64).clamp(self.min(), self.max());
            }
            cum += c;
        }
        self.max()
    }

    /// Current non-empty buckets as `(lower bound, count)` pairs — the raw
    /// distribution, for serialization and for conservation checks (the
    /// counts always sum to [`StreamingHistogram::count`]).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((bucket_low(i), c))
            })
            .collect()
    }

    /// Fold another histogram's current contents into this one.
    pub fn merge(&self, other: &StreamingHistogram) {
        for (i, b) in other.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Five-percentile summary plus exact mean/min/max/count, computed from
    /// `&self` (writers may still be recording).
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            mean_ns: self.mean(),
            min_ns: self.min(),
            p25_ns: self.percentile(25.0),
            p50_ns: self.percentile(50.0),
            p75_ns: self.percentile(75.0),
            p95_ns: self.percentile(95.0),
            p99_ns: self.percentile(99.0),
            max_ns: self.max(),
        }
    }
}

impl Clone for StreamingHistogram {
    fn clone(&self) -> StreamingHistogram {
        let copy = StreamingHistogram::new();
        copy.merge(self);
        copy
    }
}

impl std::fmt::Debug for StreamingHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingHistogram")
            .field("count", &self.count())
            .field("mean_ns", &self.mean())
            .field("p50_ns", &self.percentile(50.0))
            .field("max_ns", &self.max())
            .finish()
    }
}

/// Point-in-time summary of a [`StreamingHistogram`], in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistSummary {
    /// Samples recorded (exact).
    pub count: u64,
    /// Arithmetic mean (exact).
    pub mean_ns: f64,
    /// Smallest sample (exact).
    pub min_ns: u64,
    /// Estimated 25th percentile.
    pub p25_ns: u64,
    /// Estimated median.
    pub p50_ns: u64,
    /// Estimated 75th percentile.
    pub p75_ns: u64,
    /// Estimated 95th percentile.
    pub p95_ns: u64,
    /// Estimated 99th percentile.
    pub p99_ns: u64,
    /// Largest sample (exact).
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_is_monotone_and_tight() {
        let mut last = 0usize;
        for v in [0u64, 1, 31, 32, 33, 63, 64, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last || v < 32, "indices grow with values");
            last = i.max(last);
            assert!(bucket_low(i) <= v, "v={v} low={}", bucket_low(i));
            assert!(v < bucket_high(i) || i == BUCKETS - 1);
            // Relative bucket width ≤ 1/32 beyond the linear range.
            if v >= 32 && i < BUCKETS - 1 {
                let width = bucket_high(i) - bucket_low(i);
                assert!(width as f64 / bucket_low(i) as f64 <= 1.0 / 16.0);
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_track_exact_values_within_bucket_error() {
        let h = StreamingHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1.0);
        for (p, exact) in [(50.0, 5_000.0), (95.0, 9_500.0), (99.0, 9_900.0)] {
            let est = h.percentile(p) as f64;
            assert!(
                (est - exact).abs() / exact < 0.04,
                "p{p}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn empty_and_single_sample() {
        let h = StreamingHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(77);
        assert_eq!(h.len(), 1);
        assert_eq!(h.percentile(0.0), 77);
        assert_eq!(h.percentile(50.0), 77);
        assert_eq!(h.percentile(100.0), 77);
        assert_eq!(h.min(), 77);
        assert_eq!(h.max(), 77);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = StreamingHistogram::new();
        let b = StreamingHistogram::new();
        for _ in 0..100 {
            a.record(640);
        }
        b.record_n(640, 100);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
        assert_eq!(a.nonzero_buckets(), b.nonzero_buckets());
    }

    #[test]
    fn buckets_conserve_samples_and_merge_adds() {
        let h = StreamingHistogram::new();
        for v in [3u64, 3, 40, 41, 1_000_000, 7] {
            h.record(v);
        }
        let total: u64 = h.nonzero_buckets().iter().map(|(_, c)| c).sum();
        assert_eq!(total, h.count());

        let other = h.clone();
        h.merge(&other);
        assert_eq!(h.count(), 12);
        let total: u64 = h.nonzero_buckets().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 12);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.clone().get(), 10);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(12.5);
        assert_eq!(g.get(), 12.5);
        assert_eq!(g.clone().get(), 12.5);
    }

    #[test]
    fn summary_is_computable_from_shared_reference() {
        let h = StreamingHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 100);
        }
        // &self summary: no &mut required, unlike chc_sim::Histogram.
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!(s.p25_ns < s.p50_ns && s.p50_ns < s.p95_ns);
        assert!(s.min_ns == 100 && s.max_ns == 100_000);
    }
}
