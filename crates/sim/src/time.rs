//! Virtual time.
//!
//! All latency and throughput figures in the reproduction are expressed in
//! virtual nanoseconds. The paper reports microseconds; helper accessors are
//! provided for both units.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// Simulation start.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> VirtualTime {
        VirtualTime(ns)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> VirtualTime {
        VirtualTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> VirtualTime {
        VirtualTime(ms * 1_000_000)
    }

    /// Nanoseconds since start.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Microseconds since start (floating point, for reporting).
    pub fn as_micros_f64(&self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds since start (floating point, for reporting).
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier` (saturating at zero).
    pub fn since(&self, earlier: VirtualTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: SimDuration) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for VirtualTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = SimDuration;
    fn sub(self, rhs: VirtualTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_micros_f64())
    }
}

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from a floating-point number of microseconds.
    pub fn from_micros_f64(us: f64) -> SimDuration {
        SimDuration((us.max(0.0) * 1_000.0).round() as u64)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Nanoseconds.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Microseconds (floating point).
    pub fn as_micros_f64(&self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds (floating point).
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds (floating point).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating addition.
    pub fn saturating_add(&self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiply by an integer factor.
    pub fn times(&self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(VirtualTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(VirtualTime::from_millis(2).as_micros_f64(), 2_000.0);
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1_000.0);
        assert_eq!(SimDuration::from_micros_f64(2.5).as_nanos(), 2_500);
    }

    #[test]
    fn arithmetic() {
        let t = VirtualTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t, VirtualTime::from_micros(15));
        assert_eq!(
            t - VirtualTime::from_micros(10),
            SimDuration::from_micros(5)
        );
        // saturating behaviour on underflow
        assert_eq!(VirtualTime::ZERO - t, SimDuration::ZERO);
        assert_eq!(t.since(VirtualTime::from_micros(20)), SimDuration::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
    }
}
