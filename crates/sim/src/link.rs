//! Link models: latency, jitter and loss between pairs of actors.
//!
//! The paper's testbed connects NF servers and the datastore server over a
//! 10 G network whose round-trip time dominates externalized state access
//! (≈14 µs one way / ≈28 µs RTT as backed out of the NAT numbers in §7.1).
//! [`LinkConfig`] captures the one-way properties of such a link; the
//! simulation applies it to every message sent along the corresponding pair
//! of actors, with optional jitter and drop probability for fault-injection
//! experiments (the network "today already reorders or drops packets", §2.1).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// One-way properties of a (directed) link between two actors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Base propagation + switching latency applied to every message.
    pub latency: SimDuration,
    /// Maximum additional uniform random jitter (0 = deterministic).
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_probability: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // A low-latency datacenter hop: 2 µs one way, no jitter, lossless.
        LinkConfig {
            latency: SimDuration::from_micros(2),
            jitter: SimDuration::ZERO,
            drop_probability: 0.0,
        }
    }
}

impl LinkConfig {
    /// A link with the given one-way latency and no jitter or loss.
    pub fn with_latency(latency: SimDuration) -> LinkConfig {
        LinkConfig {
            latency,
            ..Default::default()
        }
    }

    /// An ideal zero-latency link (used to model function calls within a
    /// single process, e.g. an NF and its co-located splitter).
    pub fn ideal() -> LinkConfig {
        LinkConfig {
            latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            drop_probability: 0.0,
        }
    }

    /// Datacenter link whose round-trip time matches the paper's store RTT
    /// (default 28 µs RTT → 14 µs one way).
    pub fn store_link() -> LinkConfig {
        LinkConfig::with_latency(SimDuration::from_micros(14))
    }

    /// Add uniform jitter up to `jitter`.
    pub fn with_jitter(mut self, jitter: SimDuration) -> LinkConfig {
        self.jitter = jitter;
        self
    }

    /// Set the drop probability.
    pub fn with_drop_probability(mut self, p: f64) -> LinkConfig {
        self.drop_probability = p.clamp(0.0, 1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let l = LinkConfig::default();
        assert_eq!(l.latency, SimDuration::from_micros(2));
        assert_eq!(l.drop_probability, 0.0);
        assert_eq!(LinkConfig::ideal().latency, SimDuration::ZERO);
        assert_eq!(
            LinkConfig::store_link().latency.times(2),
            SimDuration::from_micros(28)
        );
    }

    #[test]
    fn drop_probability_is_clamped() {
        assert_eq!(
            LinkConfig::default()
                .with_drop_probability(2.0)
                .drop_probability,
            1.0
        );
        assert_eq!(
            LinkConfig::default()
                .with_drop_probability(-1.0)
                .drop_probability,
            0.0
        );
    }
}
