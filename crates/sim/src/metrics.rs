//! Measurement utilities used by tests and the paper-figure harnesses.
//!
//! The paper reports latency percentiles (Figure 8, 11, 12), latency time
//! series (Figure 9, 13), throughput in Gbps (Figure 10) and recovery times
//! (Figure 14). This module provides the corresponding collectors.

use crate::time::{SimDuration, VirtualTime};
use serde::{Deserialize, Serialize};

/// A simple exact histogram of durations (stores every sample).
///
/// The experiments record at most a few million samples, so exact storage is
/// affordable and keeps percentile computation trivially correct.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
        self.sorted = false;
    }

    /// Record a raw nanosecond value.
    pub fn record_nanos(&mut self, ns: u64) {
        self.samples.push(ns);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Value at percentile `p` in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let idx = ((p / 100.0) * (self.samples.len() - 1) as f64).floor() as usize;
        SimDuration::from_nanos(self.samples[idx])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> SimDuration {
        self.percentile(50.0)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&v| v as u128).sum();
        SimDuration::from_nanos((sum / self.samples.len() as u128) as u64)
    }

    /// Largest sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Smallest sample.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// Cumulative distribution: `(value, fraction ≤ value)` pairs at the given
    /// number of evenly spaced points, for CDF plots (Figures 11 and 12).
    pub fn cdf(&mut self, points: usize) -> Vec<(SimDuration, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let idx = ((frac * n as f64).ceil() as usize).clamp(1, n) - 1;
                (SimDuration::from_nanos(self.samples[idx]), frac)
            })
            .collect()
    }

    /// The paper's standard five percentiles: 5, 25, 50, 75, 95.
    pub fn summary(&mut self) -> Summary {
        Summary {
            p5: self.percentile(5.0),
            p25: self.percentile(25.0),
            p50: self.percentile(50.0),
            p75: self.percentile(75.0),
            p95: self.percentile(95.0),
            mean: self.mean(),
            count: self.len(),
        }
    }
}

/// Five-number summary plus mean, matching the box plots of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Summary {
    /// 5th percentile.
    pub p5: SimDuration,
    /// 25th percentile.
    pub p25: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 75th percentile.
    pub p75: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// Mean.
    pub mean: SimDuration,
    /// Number of samples summarised.
    pub count: usize,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p5={} p25={} p50={} p75={} p95={} mean={} n={}",
            self.p5, self.p25, self.p50, self.p75, self.p95, self.mean, self.count
        )
    }
}

/// A time series of `(time, value)` samples (Figures 9 and 13).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(VirtualTime, f64)>,
}

impl TimeSeries {
    /// Create an empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Append a sample.
    pub fn push(&mut self, at: VirtualTime, value: f64) {
        self.points.push((at, value));
    }

    /// All samples in insertion order.
    pub fn points(&self) -> &[(VirtualTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Average value of samples whose timestamp is in `[from, to)`, or `None`
    /// if the window holds no samples. Used to produce the windowed averages
    /// of Figure 13 (500 µs windows).
    pub fn window_mean(&self, from: VirtualTime, to: VirtualTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (t, v) in &self.points {
            if *t >= from && *t < to {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Largest sample value.
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max)
    }
}

/// Throughput accounting: bytes processed over a span of virtual time.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Throughput {
    bytes: u64,
    packets: u64,
    first: Option<VirtualTime>,
    last: Option<VirtualTime>,
}

impl Throughput {
    /// Create an empty accumulator.
    pub fn new() -> Throughput {
        Throughput::default()
    }

    /// Record a packet of `bytes` bytes completed at time `at`.
    pub fn record(&mut self, at: VirtualTime, bytes: u64) {
        self.bytes += bytes;
        self.packets += 1;
        if self.first.is_none() {
            self.first = Some(at);
        }
        self.last = Some(at);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total packets recorded.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Average goodput in Gbps between the first and last recorded packet.
    pub fn gbps(&self) -> f64 {
        match (self.first, self.last) {
            (Some(a), Some(b)) if b > a => {
                let ns = (b - a).as_nanos() as f64;
                (self.bytes as f64 * 8.0) / ns
            }
            _ => 0.0,
        }
    }

    /// Packets per second between the first and last recorded packet.
    pub fn pps(&self) -> f64 {
        match (self.first, self.last) {
            (Some(a), Some(b)) if b > a => {
                let s = (b - a).as_secs_f64();
                self.packets as f64 / s
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record(SimDuration::from_micros(i));
        }
        assert_eq!(h.len(), 100);
        assert_eq!(h.median(), SimDuration::from_micros(50));
        assert_eq!(h.percentile(95.0), SimDuration::from_micros(95));
        assert_eq!(h.percentile(0.0), SimDuration::from_micros(1));
        assert_eq!(h.percentile(100.0), SimDuration::from_micros(100));
        assert_eq!(h.min(), SimDuration::from_micros(1));
        assert_eq!(h.max(), SimDuration::from_micros(100));
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p25 < s.p75);
    }

    #[test]
    fn histogram_empty() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.median(), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert!(h.cdf(10).is_empty());
    }

    #[test]
    fn cdf_monotonic() {
        let mut h = Histogram::new();
        for i in (1..=1000u64).rev() {
            h.record_nanos(i);
        }
        let cdf = h.cdf(10);
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn time_series_window_mean() {
        let mut ts = TimeSeries::new();
        ts.push(VirtualTime::from_micros(1), 10.0);
        ts.push(VirtualTime::from_micros(2), 20.0);
        ts.push(VirtualTime::from_micros(10), 100.0);
        assert_eq!(
            ts.window_mean(VirtualTime::ZERO, VirtualTime::from_micros(5)),
            Some(15.0)
        );
        assert_eq!(
            ts.window_mean(VirtualTime::from_micros(20), VirtualTime::from_micros(30)),
            None
        );
        assert_eq!(ts.max_value(), 100.0);
    }

    #[test]
    fn throughput_gbps() {
        let mut t = Throughput::new();
        // 1250 bytes every microsecond for 1000 packets = 10 Gbps.
        for i in 0..1000u64 {
            t.record(VirtualTime::from_micros(i), 1250);
        }
        let g = t.gbps();
        assert!((g - 10.0).abs() < 0.2, "got {g}");
        assert_eq!(t.packets(), 1000);
        assert!(t.pps() > 900_000.0);
    }

    #[test]
    fn throughput_degenerate() {
        let mut t = Throughput::new();
        assert_eq!(t.gbps(), 0.0);
        t.record(VirtualTime::from_micros(5), 100);
        // single sample: no elapsed time
        assert_eq!(t.gbps(), 0.0);
    }
}
