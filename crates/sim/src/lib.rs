//! # chc-sim
//!
//! A deterministic discrete-event simulation substrate used to run CHC chains
//! without the testbed hardware the paper uses (CloudLab servers, 10 G NICs,
//! Mellanox VMA kernel bypass).
//!
//! The simulator provides:
//!
//! * virtual time in nanoseconds ([`VirtualTime`], [`SimDuration`]),
//! * an actor-style executor ([`Simulation`]) that delivers typed messages to
//!   registered [`Actor`]s in timestamp order, with per-link latency, jitter
//!   and drop probability ([`LinkConfig`]),
//! * timers, self-messages and externally injected events,
//! * fail-stop failure injection and recovery (actors can be killed at a
//!   chosen virtual time and replaced later, matching the paper's §5.4
//!   failure model), and
//! * measurement utilities ([`metrics`]): percentile histograms, time series
//!   and throughput accounting used by the benchmark harnesses.
//!
//! Determinism: all randomness comes from a single seeded RNG owned by the
//! simulation, and ties in the event queue are broken by insertion sequence
//! numbers, so a given (seed, program) pair always produces the same history.

pub mod event;
pub mod link;
pub mod metrics;
pub mod sim;
pub mod time;

pub use event::{ActorId, TimerTag};
pub use link::LinkConfig;
pub use metrics::{Histogram, Summary, Throughput, TimeSeries};
pub use sim::{Actor, Ctx, Simulation, SimulationReport};
pub use time::{SimDuration, VirtualTime};
