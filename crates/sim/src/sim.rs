//! The discrete-event executor: actors, contexts and the simulation loop.
//!
//! The CHC framework components (root, splitters, NF instances, datastore
//! servers, managers) are implemented as [`Actor`]s exchanging a
//! framework-defined message type `M`. The [`Simulation`] owns the actors,
//! the virtual clock, the seeded RNG and the event queue, and delivers
//! messages/timers in timestamp order. Fail-stop failures (§5.4 of the paper)
//! are modelled by marking an actor failed: pending and future deliveries to
//! it are dropped until it is replaced via [`Simulation::replace_actor`].

use crate::event::{ActorId, EventKind, EventQueue, TimerTag};
use crate::link::LinkConfig;
use crate::time::{SimDuration, VirtualTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::collections::HashMap;

/// A simulated component. `M` is the message type exchanged between actors.
///
/// `Actor` requires [`Any`] so that tests and harnesses can downcast actors
/// back to their concrete type after a run to extract results.
pub trait Actor<M>: Any {
    /// Called once when the actor is added to the simulation (or when it
    /// replaces a failed actor).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// A message arrived.
    fn on_message(&mut self, from: Option<ActorId>, msg: M, ctx: &mut Ctx<'_, M>);

    /// A timer scheduled by this actor fired.
    fn on_timer(&mut self, _tag: TimerTag, _ctx: &mut Ctx<'_, M>) {}

    /// Human-readable name used in reports.
    fn name(&self) -> String {
        "actor".to_string()
    }
}

/// Execution context handed to actors: the clock, messaging and timers.
pub struct Ctx<'a, M> {
    now: VirtualTime,
    self_id: ActorId,
    queue: &'a mut EventQueue<M>,
    rng: &'a mut StdRng,
    links: &'a HashMap<(ActorId, ActorId), LinkConfig>,
    default_link: LinkConfig,
    failed: &'a [bool],
    dropped_messages: &'a mut u64,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// The id of the actor being invoked.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// The link configuration used for messages from `self` to `dst`.
    pub fn link_to(&self, dst: ActorId) -> LinkConfig {
        self.links
            .get(&(self.self_id, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Send `msg` to `dst` over the configured link (latency + jitter applied,
    /// message possibly dropped according to the link's drop probability).
    pub fn send(&mut self, dst: ActorId, msg: M) {
        self.send_with_extra_delay(dst, msg, SimDuration::ZERO);
    }

    /// Send with an additional delay on top of the link latency. Used to model
    /// processing time spent before the message leaves the component.
    pub fn send_with_extra_delay(&mut self, dst: ActorId, msg: M, extra: SimDuration) {
        let link = self.link_to(dst);
        if link.drop_probability > 0.0 && self.rng.gen_bool(link.drop_probability) {
            *self.dropped_messages += 1;
            return;
        }
        let jitter = if link.jitter.as_nanos() > 0 {
            SimDuration::from_nanos(self.rng.gen_range(0..=link.jitter.as_nanos()))
        } else {
            SimDuration::ZERO
        };
        if self.failed.get(dst.0).copied().unwrap_or(false) {
            // Destination is down: the network delivers into the void.
            *self.dropped_messages += 1;
            return;
        }
        let at = self.now + link.latency + jitter + extra;
        self.queue.push(
            at,
            dst,
            EventKind::Message {
                from: Some(self.self_id),
                msg,
            },
        );
    }

    /// Schedule a timer for `self` after `delay`; `tag` is returned to
    /// [`Actor::on_timer`].
    pub fn schedule(&mut self, delay: SimDuration, tag: TimerTag) {
        self.queue
            .push(self.now + delay, self.self_id, EventKind::Timer(tag));
    }

    /// Send a message to `self` after `delay` (bypasses link modelling).
    pub fn send_self(&mut self, delay: SimDuration, msg: M) {
        self.queue.push(
            self.now + delay,
            self.self_id,
            EventKind::Message {
                from: Some(self.self_id),
                msg,
            },
        );
    }

    /// Deterministic RNG shared by the whole simulation.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Uniform random duration in `[lo, hi]` (inclusive), convenience wrapper
    /// used for modelling variable per-packet processing costs.
    pub fn random_delay(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        if hi <= lo {
            return lo;
        }
        SimDuration::from_nanos(self.rng.gen_range(lo.as_nanos()..=hi.as_nanos()))
    }

    /// True if `dst` is currently marked failed.
    pub fn is_failed(&self, dst: ActorId) -> bool {
        self.failed.get(dst.0).copied().unwrap_or(false)
    }
}

/// Summary of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimulationReport {
    /// Number of events delivered.
    pub events_processed: u64,
    /// Messages dropped by links or because the destination had failed.
    pub dropped_messages: u64,
    /// Virtual time when the run stopped.
    pub end_time: VirtualTime,
}

/// The discrete-event simulation.
pub struct Simulation<M: 'static> {
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    failed: Vec<bool>,
    queue: EventQueue<M>,
    now: VirtualTime,
    rng: StdRng,
    links: HashMap<(ActorId, ActorId), LinkConfig>,
    default_link: LinkConfig,
    events_processed: u64,
    dropped_messages: u64,
    /// Safety valve against runaway event loops in buggy protocols.
    max_events: u64,
}

impl<M: 'static> Simulation<M> {
    /// Create a simulation with the given RNG seed.
    pub fn new(seed: u64) -> Simulation<M> {
        Simulation {
            actors: Vec::new(),
            failed: Vec::new(),
            queue: EventQueue::default(),
            now: VirtualTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            links: HashMap::new(),
            default_link: LinkConfig::default(),
            events_processed: 0,
            dropped_messages: 0,
            max_events: u64::MAX,
        }
    }

    /// Limit the total number of delivered events (safety valve for tests).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Set the link configuration used when no per-pair override exists.
    pub fn set_default_link(&mut self, link: LinkConfig) {
        self.default_link = link;
    }

    /// Configure the directed link `from → to`.
    pub fn set_link(&mut self, from: ActorId, to: ActorId, link: LinkConfig) {
        self.links.insert((from, to), link);
    }

    /// Configure both directions between `a` and `b`.
    pub fn set_link_bidi(&mut self, a: ActorId, b: ActorId, link: LinkConfig) {
        self.links.insert((a, b), link);
        self.links.insert((b, a), link);
    }

    /// Register an actor; its `on_start` hook runs immediately.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(Some(actor));
        self.failed.push(false);
        self.start_actor(id);
        id
    }

    fn start_actor(&mut self, id: ActorId) {
        let mut actor = self.actors[id.0].take().expect("actor present");
        let mut ctx = Ctx {
            now: self.now,
            self_id: id,
            queue: &mut self.queue,
            rng: &mut self.rng,
            links: &self.links,
            default_link: self.default_link,
            failed: &self.failed,
            dropped_messages: &mut self.dropped_messages,
        };
        actor.on_start(&mut ctx);
        self.actors[id.0] = Some(actor);
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of registered actors (including failed ones).
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Inject a message from "outside the simulation" (e.g. the traffic
    /// source feeding the chain root) to be delivered at absolute time `at`.
    pub fn inject_at(&mut self, at: VirtualTime, dst: ActorId, msg: M) {
        let at = at.max(self.now);
        self.queue
            .push(at, dst, EventKind::Message { from: None, msg });
    }

    /// Inject a message `delay` after the current time.
    pub fn inject_after(&mut self, delay: SimDuration, dst: ActorId, msg: M) {
        self.queue.push(
            self.now + delay,
            dst,
            EventKind::Message { from: None, msg },
        );
    }

    /// Mark `id` failed at absolute virtual time `at` (fail-stop).
    pub fn fail_at(&mut self, id: ActorId, at: VirtualTime) {
        let at = at.max(self.now);
        self.queue.push(at, id, EventKind::Fail);
    }

    /// Mark `id` failed immediately.
    pub fn fail_now(&mut self, id: ActorId) {
        if let Some(slot) = self.failed.get_mut(id.0) {
            *slot = true;
        }
    }

    /// True if the actor is currently failed.
    pub fn is_failed(&self, id: ActorId) -> bool {
        self.failed.get(id.0).copied().unwrap_or(false)
    }

    /// Replace a (possibly failed) actor with a new instance under the same
    /// id, clearing the failed flag. Models a recovered / failover component
    /// that takes over the failed one's identity.
    pub fn replace_actor(&mut self, id: ActorId, actor: Box<dyn Actor<M>>) {
        assert!(id.0 < self.actors.len(), "unknown actor {id}");
        self.actors[id.0] = Some(actor);
        self.failed[id.0] = false;
        self.start_actor(id);
    }

    /// Immutable access to an actor downcast to its concrete type.
    pub fn actor<T: 'static>(&self, id: ActorId) -> Option<&T> {
        self.actors.get(id.0)?.as_ref().map(|a| {
            let any: &dyn Any = a.as_ref();
            any.downcast_ref::<T>()
        })?
    }

    /// Mutable access to an actor downcast to its concrete type.
    pub fn actor_mut<T: 'static>(&mut self, id: ActorId) -> Option<&mut T> {
        self.actors.get_mut(id.0)?.as_mut().map(|a| {
            let any: &mut dyn Any = a.as_mut();
            any.downcast_mut::<T>()
        })?
    }

    /// Deliver the next event, if any. Returns `false` when the queue is empty
    /// or the event limit was reached.
    pub fn step(&mut self) -> bool {
        if self.events_processed >= self.max_events {
            return false;
        }
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.events_processed += 1;

        match ev.kind {
            EventKind::Fail => {
                if let Some(slot) = self.failed.get_mut(ev.dst.0) {
                    *slot = true;
                }
                return true;
            }
            EventKind::Message { .. } | EventKind::Timer(_) => {}
        }

        if self.failed.get(ev.dst.0).copied().unwrap_or(true) {
            // Destination failed (or unknown): drop.
            self.dropped_messages += 1;
            return true;
        }
        let Some(mut actor) = self.actors[ev.dst.0].take() else {
            self.dropped_messages += 1;
            return true;
        };
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: ev.dst,
                queue: &mut self.queue,
                rng: &mut self.rng,
                links: &self.links,
                default_link: self.default_link,
                failed: &self.failed,
                dropped_messages: &mut self.dropped_messages,
            };
            match ev.kind {
                EventKind::Message { from, msg } => actor.on_message(from, msg, &mut ctx),
                EventKind::Timer(tag) => actor.on_timer(tag, &mut ctx),
                EventKind::Fail => unreachable!("handled above"),
            }
        }
        // The actor may have been replaced while it was out of its slot only
        // by itself (not possible), so putting it back is always correct.
        self.actors[ev.dst.0] = Some(actor);
        true
    }

    /// Run until the event queue drains (or the event limit is reached).
    pub fn run(&mut self) -> SimulationReport {
        while self.step() {}
        self.report()
    }

    /// Run until virtual time reaches `deadline` (events at exactly the
    /// deadline are processed) or the queue drains.
    pub fn run_until(&mut self, deadline: VirtualTime) -> SimulationReport {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
        if self.now < deadline && self.queue.is_empty() {
            // advance the clock even if nothing happened
            self.now = deadline;
        } else if self.now < deadline {
            self.now = deadline;
        }
        self.report()
    }

    /// Report of the run so far.
    pub fn report(&self) -> SimulationReport {
        SimulationReport {
            events_processed: self.events_processed,
            dropped_messages: self.dropped_messages,
            end_time: self.now,
        }
    }

    /// Number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ping-pong pair: each actor echoes back a counter until it reaches 0.
    struct PingPong {
        peer: Option<ActorId>,
        received: Vec<(u64, u32)>, // (time ns, value)
    }

    impl Actor<u32> for PingPong {
        fn on_message(&mut self, from: Option<ActorId>, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.received.push((ctx.now().as_nanos(), msg));
            if msg > 0 {
                let dst = self.peer.or(from).expect("someone to answer");
                ctx.send(dst, msg - 1);
            }
        }
    }

    /// An actor counting its timer firings.
    struct Ticker {
        period: SimDuration,
        remaining: u32,
        fired: u32,
    }

    impl Actor<u32> for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.schedule(self.period, 1);
        }
        fn on_message(&mut self, _from: Option<ActorId>, _msg: u32, _ctx: &mut Ctx<'_, u32>) {}
        fn on_timer(&mut self, _tag: TimerTag, ctx: &mut Ctx<'_, u32>) {
            self.fired += 1;
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.schedule(self.period, 1);
            }
        }
    }

    #[test]
    fn ping_pong_latency_accumulates() {
        let mut sim: Simulation<u32> = Simulation::new(1);
        sim.set_default_link(LinkConfig::with_latency(SimDuration::from_micros(5)));
        let a = sim.add_actor(Box::new(PingPong {
            peer: None,
            received: vec![],
        }));
        let b = sim.add_actor(Box::new(PingPong {
            peer: Some(a),
            received: vec![],
        }));
        sim.actor_mut::<PingPong>(a).unwrap().peer = Some(b);
        sim.inject_at(VirtualTime::ZERO, a, 4);
        let report = sim.run();
        // 4 -> a, 3 -> b, 2 -> a, 1 -> b, 0 -> a = 5 deliveries
        assert_eq!(report.events_processed, 5);
        let a_ref = sim.actor::<PingPong>(a).unwrap();
        let b_ref = sim.actor::<PingPong>(b).unwrap();
        assert_eq!(
            a_ref.received.iter().map(|r| r.1).collect::<Vec<_>>(),
            vec![4, 2, 0]
        );
        assert_eq!(
            b_ref.received.iter().map(|r| r.1).collect::<Vec<_>>(),
            vec![3, 1]
        );
        // Each hop adds 5us.
        assert_eq!(sim.now(), VirtualTime::from_micros(20));
    }

    #[test]
    fn timers_fire_periodically() {
        let mut sim: Simulation<u32> = Simulation::new(2);
        let t = sim.add_actor(Box::new(Ticker {
            period: SimDuration::from_millis(1),
            remaining: 9,
            fired: 0,
        }));
        sim.run();
        assert_eq!(sim.actor::<Ticker>(t).unwrap().fired, 10);
        assert_eq!(sim.now(), VirtualTime::from_millis(10));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Simulation<u32> = Simulation::new(3);
        let t = sim.add_actor(Box::new(Ticker {
            period: SimDuration::from_millis(1),
            remaining: 100,
            fired: 0,
        }));
        sim.run_until(VirtualTime::from_millis(5));
        let fired_mid = sim.actor::<Ticker>(t).unwrap().fired;
        assert_eq!(fired_mid, 5);
        assert_eq!(sim.now(), VirtualTime::from_millis(5));
        sim.run();
        assert_eq!(sim.actor::<Ticker>(t).unwrap().fired, 101);
    }

    #[test]
    fn failed_actor_drops_messages_and_can_be_replaced() {
        let mut sim: Simulation<u32> = Simulation::new(4);
        let a = sim.add_actor(Box::new(PingPong {
            peer: None,
            received: vec![],
        }));
        sim.fail_now(a);
        sim.inject_at(VirtualTime::from_micros(1), a, 7);
        let report = sim.run();
        assert_eq!(report.dropped_messages, 1);
        assert!(sim.is_failed(a));
        assert!(sim.actor::<PingPong>(a).unwrap().received.is_empty());

        sim.replace_actor(
            a,
            Box::new(PingPong {
                peer: None,
                received: vec![],
            }),
        );
        assert!(!sim.is_failed(a));
        sim.inject_after(SimDuration::from_micros(1), a, 0);
        sim.run();
        assert_eq!(sim.actor::<PingPong>(a).unwrap().received.len(), 1);
    }

    #[test]
    fn fail_at_takes_effect_at_the_scheduled_time() {
        let mut sim: Simulation<u32> = Simulation::new(5);
        sim.set_default_link(LinkConfig::ideal());
        let a = sim.add_actor(Box::new(PingPong {
            peer: None,
            received: vec![],
        }));
        sim.inject_at(VirtualTime::from_micros(1), a, 0); // delivered (before failure)
        sim.fail_at(a, VirtualTime::from_micros(5));
        sim.inject_at(VirtualTime::from_micros(10), a, 0); // dropped (after failure)
        let report = sim.run();
        assert_eq!(sim.actor::<PingPong>(a).unwrap().received.len(), 1);
        assert_eq!(report.dropped_messages, 1);
    }

    #[test]
    fn lossy_links_drop_messages_deterministically() {
        let run = |seed: u64| {
            let mut sim: Simulation<u32> = Simulation::new(seed);
            sim.set_default_link(LinkConfig::default().with_drop_probability(0.5));
            let a = sim.add_actor(Box::new(PingPong {
                peer: None,
                received: vec![],
            }));
            let b = sim.add_actor(Box::new(PingPong {
                peer: Some(a),
                received: vec![],
            }));
            sim.actor_mut::<PingPong>(a).unwrap().peer = Some(b);
            sim.inject_at(VirtualTime::ZERO, a, 100);
            sim.run();
            let got = sim.actor::<PingPong>(a).unwrap().received.len()
                + sim.actor::<PingPong>(b).unwrap().received.len();
            got
        };
        // With 50% loss the exchange dies early: strictly fewer than the
        // lossless 101 deliveries, and deterministic for a fixed seed.
        let x = run(7);
        assert!(x < 101);
        assert_eq!(x, run(7));
    }

    #[test]
    fn max_events_guard() {
        let mut sim: Simulation<u32> = Simulation::new(6);
        sim.set_max_events(10);
        let a = sim.add_actor(Box::new(PingPong {
            peer: None,
            received: vec![],
        }));
        let b = sim.add_actor(Box::new(PingPong {
            peer: Some(a),
            received: vec![],
        }));
        sim.actor_mut::<PingPong>(a).unwrap().peer = Some(b);
        sim.inject_at(VirtualTime::ZERO, a, u32::MAX); // effectively infinite ping-pong
        let report = sim.run();
        assert_eq!(report.events_processed, 10);
    }

    #[test]
    fn downcast_to_wrong_type_is_none() {
        let mut sim: Simulation<u32> = Simulation::new(8);
        let a = sim.add_actor(Box::new(PingPong {
            peer: None,
            received: vec![],
        }));
        assert!(sim.actor::<Ticker>(a).is_none());
        assert!(sim.actor::<PingPong>(a).is_some());
    }
}
