//! Event queue internals: actor identifiers, timer tags and the ordered queue.

use crate::time::VirtualTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Identifier of an actor registered with a [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ActorId(pub usize);

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// Application-chosen tag identifying a timer.
pub type TimerTag = u64;

/// What is delivered when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver a message to the destination actor.
    Message { from: Option<ActorId>, msg: M },
    /// Fire a timer previously scheduled by the destination actor.
    Timer(TimerTag),
    /// Kill the destination actor (fail-stop).
    Fail,
}

/// An entry in the event queue.
#[derive(Debug)]
pub(crate) struct Event<M> {
    pub at: VirtualTime,
    /// Tie-breaker preserving insertion order for equal timestamps.
    pub seq: u64,
    pub dst: ActorId,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Time-ordered event queue with FIFO tie-breaking.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    pub fn push(&mut self, at: VirtualTime, dst: ActorId, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, dst, kind });
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q: EventQueue<u32> = EventQueue::default();
        let a = ActorId(0);
        q.push(VirtualTime::from_nanos(50), a, EventKind::Timer(1));
        q.push(VirtualTime::from_nanos(10), a, EventKind::Timer(2));
        q.push(VirtualTime::from_nanos(10), a, EventKind::Timer(3));
        q.push(VirtualTime::from_nanos(30), a, EventKind::Timer(4));
        assert_eq!(q.len(), 4);
        let order: Vec<TimerTag> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer(t) => t,
                _ => unreachable!(),
            })
            .collect();
        // Equal timestamps (tags 2 and 3) preserve insertion order.
        assert_eq!(order, vec![2, 3, 4, 1]);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
