//! Baseline regression gating: diff a fresh `paper_eval` run against a
//! committed `BENCH_*.json` document and fail when throughput regressed
//! beyond budget or the telemetry stack got more expensive than the budget
//! allows.
//!
//! The workspace has no JSON parser (all dependencies are vendored), so the
//! baseline document is read back the same way it was written: hand-rolled
//! field extraction over the known `records_to_json` layout — one
//! `runtime_chain` row per line, numeric fields as `"key":value` pairs.
//! The extractor is deliberately line-oriented and key-anchored so
//! unrelated schema growth (new fields, new sections) never breaks old
//! baselines.

use crate::runtime_bench::{RecoveryRecord, RuntimeBenchRecord, TelemetryBenchRecord};
use std::fmt::Write as _;

/// Fail the gate when a realtime row's throughput drops more than this many
/// percent below the baseline row.
pub const PPS_REGRESSION_BUDGET_PCT: f64 = 10.0;

/// Fail the gate when the telemetry experiment prices the full
/// instrumentation stack (spans + journal + gauges + sentinel + sampled
/// tracing) above this throughput cost, in percent.
pub const TELEMETRY_OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// One throughput row recovered from a baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// `"realtime"` or `"simulator"`.
    pub substrate: String,
    /// Ring batch size (0 for the simulator).
    pub batch_size: usize,
    /// Recorded packets/s.
    pub pps: f64,
}

/// What a `BENCH_*.json` document pins: the scale it ran at, its throughput
/// rows, and (when the telemetry experiment ran) the instrumentation
/// overhead it measured.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Trace scale factor of the baseline run.
    pub scale: f64,
    /// Throughput rows in document order.
    pub rows: Vec<BaselineRow>,
    /// `overhead_pct` of the baseline's telemetry experiment, if present.
    pub overhead_pct: Option<f64>,
    /// Recovery time per kill position (`entry`/`mid`/`tail`/`root`), in
    /// microseconds, when the baseline ran the recovery-vs-position sweep.
    pub recovery_positions: Vec<(String, f64)>,
}

/// Extract the string value of `"key":"..."` from one line, if present.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extract the numeric value of `"key":<number>` from one line, if present.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse a `BENCH_*.json` document written by
/// [`crate::runtime_bench::records_to_json`].
///
/// Returns an error when the document carries no recognizable throughput
/// rows — a truncated or foreign file must fail loudly, not gate nothing.
pub fn parse_baseline(json: &str) -> Result<Baseline, String> {
    let scale = json
        .lines()
        .find_map(|l| num_field(l, "scale"))
        .ok_or("baseline has no \"scale\" field")?;

    // Throughput rows are the only objects carrying a "substrate" key; the
    // writer puts one per line inside the "runtime_chain" array.
    let mut rows = Vec::new();
    for line in json.lines() {
        let (Some(substrate), Some(batch), Some(pps)) = (
            str_field(line, "substrate"),
            num_field(line, "batch_size"),
            num_field(line, "pps"),
        ) else {
            continue;
        };
        rows.push(BaselineRow {
            substrate,
            batch_size: batch as usize,
            pps,
        });
    }
    if rows.is_empty() {
        return Err("baseline has no runtime_chain rows (not a paper_eval document?)".to_string());
    }

    // The telemetry record is one (long) line; "overhead_pct" appears only
    // inside its "overhead" object.
    let overhead_pct = json.lines().find_map(|l| num_field(l, "overhead_pct"));

    // Recovery rows carry both a "position" and a "recovery_us" key; the
    // writer puts one per line inside "recovery_by_position". The single
    // "recovery" record (always the entry kill) matches too — last-wins per
    // position keeps the sweep's row when both are present.
    let mut recovery_positions: Vec<(String, f64)> = Vec::new();
    for line in json.lines() {
        let (Some(position), Some(us)) =
            (str_field(line, "position"), num_field(line, "recovery_us"))
        else {
            continue;
        };
        if let Some(slot) = recovery_positions.iter_mut().find(|(p, _)| *p == position) {
            slot.1 = us;
        } else {
            recovery_positions.push((position, us));
        }
    }

    Ok(Baseline {
        scale,
        rows,
        overhead_pct,
        recovery_positions,
    })
}

/// Outcome of diffing a fresh run against a baseline: the rendered
/// comparison plus every budget breach. An empty `failures` list means the
/// gate passes.
#[derive(Debug, Clone, Default)]
pub struct BaselineDiff {
    /// Human-readable comparison, one line per row plus the overhead line.
    pub lines: Vec<String>,
    /// Budget breaches; empty when the gate passes.
    pub failures: Vec<String>,
}

impl BaselineDiff {
    /// True when no budget was breached.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// The full report: comparison lines, then failures (if any).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            let _ = writeln!(out, "  {l}");
        }
        for f in &self.failures {
            let _ = writeln!(out, "  FAIL: {f}");
        }
        if self.failures.is_empty() {
            let _ = writeln!(
                out,
                "  baseline gate: PASS (pps within -{PPS_REGRESSION_BUDGET_PCT:.0}%, \
                 telemetry overhead within {TELEMETRY_OVERHEAD_BUDGET_PCT:.0}%)"
            );
        }
        out
    }
}

/// Diff fresh records against a parsed baseline.
///
/// Gated: realtime rows regressing more than
/// [`PPS_REGRESSION_BUDGET_PCT`] below the matching baseline row
/// (matched on substrate + batch size), and the current telemetry
/// experiment's `overhead_pct` exceeding
/// [`TELEMETRY_OVERHEAD_BUDGET_PCT`]. Reported but not gated: simulator
/// rows (virtual-time throughput measures simulation cost, not the engine)
/// and rows without a baseline counterpart (a new batch size is growth,
/// not regression). A scale mismatch fails outright — throughput at
/// different trace scales is not comparable.
pub fn compare_with_baseline(
    baseline: &Baseline,
    current_scale: f64,
    current: &[RuntimeBenchRecord],
    recovery: Option<&[RecoveryRecord]>,
    telemetry: Option<&TelemetryBenchRecord>,
) -> BaselineDiff {
    let mut diff = BaselineDiff::default();

    if (baseline.scale - current_scale).abs() > 1e-9 {
        diff.failures.push(format!(
            "scale mismatch: baseline ran at {}, this run at {} (throughput not comparable)",
            baseline.scale, current_scale
        ));
        return diff;
    }

    for r in current {
        let label = format!("{} batch {}", r.substrate, r.batch_size);
        let Some(base) = baseline
            .rows
            .iter()
            .find(|b| b.substrate == r.substrate && b.batch_size == r.batch_size)
        else {
            diff.lines
                .push(format!("{label:<22} {:>11.0} pps (no baseline row)", r.pps));
            continue;
        };
        let delta_pct = if base.pps > 0.0 {
            (r.pps - base.pps) / base.pps * 100.0
        } else {
            0.0
        };
        diff.lines.push(format!(
            "{label:<22} {:>11.0} pps vs {:>11.0} baseline ({delta_pct:+.1}%)",
            r.pps, base.pps
        ));
        if r.substrate == "realtime" && delta_pct < -PPS_REGRESSION_BUDGET_PCT {
            diff.failures.push(format!(
                "{label}: throughput regressed {delta_pct:.1}% \
                 (budget -{PPS_REGRESSION_BUDGET_PCT:.0}%)"
            ));
        }
    }

    // Recovery-time-vs-position rows. Wall-clock recovery time on a shared
    // host is far too noisy to gate on a percentage, so the times inform
    // only; what *is* gated is coverage — a kill position the baseline
    // recovered from must still be measured, recover, and stay correct.
    if let Some(recs) = recovery {
        for r in recs {
            let base = baseline
                .recovery_positions
                .iter()
                .find(|(p, _)| *p == r.position)
                .map(|(_, us)| format!("{us:>9.1} us baseline"))
                .unwrap_or_else(|| "no baseline".to_string());
            diff.lines.push(format!(
                "recovery {:<13} {:>9.1} us vs {base}",
                r.position, r.recovery_us
            ));
            if !r.matches_healthy || r.sink_duplicates > 0 || r.invariant_violations > 0 {
                diff.failures.push(format!(
                    "recovery at {}: incorrect failover (matches_healthy={}, \
                     sink_duplicates={}, invariant_violations={})",
                    r.position, r.matches_healthy, r.sink_duplicates, r.invariant_violations
                ));
            }
        }
        for (pos, _) in &baseline.recovery_positions {
            if !recs.iter().any(|r| r.position == *pos) {
                diff.failures.push(format!(
                    "recovery coverage regressed: baseline measured a '{pos}' kill, \
                     this run did not"
                ));
            }
        }
    }

    if let Some(t) = telemetry {
        let cur = t.overhead_pct();
        let base = baseline
            .overhead_pct
            .map(|b| format!("{b:+.2}% baseline"))
            .unwrap_or_else(|| "no baseline".to_string());
        diff.lines
            .push(format!("telemetry overhead     {cur:+.2}% vs {base}"));
        if cur > TELEMETRY_OVERHEAD_BUDGET_PCT {
            diff.failures.push(format!(
                "telemetry overhead {cur:+.2}% exceeds the \
                 {TELEMETRY_OVERHEAD_BUDGET_PCT:.0}% budget"
            ));
        }
    }

    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime_bench::BENCH_CHAIN;

    fn record(substrate: &str, batch: usize, pps: f64) -> RuntimeBenchRecord {
        RuntimeBenchRecord {
            chain: BENCH_CHAIN.to_string(),
            substrate: substrate.to_string(),
            batch_size: batch,
            packets: 1000,
            delivered: 1000,
            wall_s: 0.1,
            pps,
            gbps: 0.1,
            p50_us: 10.0,
            p99_us: 20.0,
            store_ops: 1,
        }
    }

    fn baseline_json(pps8: f64, pps64: f64) -> String {
        crate::runtime_bench::records_to_json(
            crate::Scale(0.05),
            &[
                record("realtime", 8, pps8),
                record("realtime", 64, pps64),
                record("simulator", 0, 9e5),
            ],
            None,
            None,
            None,
            None,
            None,
        )
    }

    #[test]
    fn parses_what_records_to_json_writes() {
        let b = parse_baseline(&baseline_json(50_000.0, 90_000.0)).unwrap();
        assert_eq!(b.scale, 0.05);
        assert_eq!(b.rows.len(), 3);
        assert_eq!(b.rows[0].substrate, "realtime");
        assert_eq!(b.rows[0].batch_size, 8);
        assert!((b.rows[0].pps - 50_000.0).abs() < 0.5);
        assert_eq!(b.rows[2].substrate, "simulator");
        assert!(b.overhead_pct.is_none());

        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\n  \"scale\": 1\n}").is_err());
    }

    #[test]
    fn passes_within_budget_and_fails_beyond_it() {
        let base = parse_baseline(&baseline_json(50_000.0, 90_000.0)).unwrap();

        // 5% down: within the 10% budget.
        let ok = compare_with_baseline(
            &base,
            0.05,
            &[
                record("realtime", 8, 47_500.0),
                record("realtime", 64, 95_000.0),
            ],
            None,
            None,
        );
        assert!(ok.ok(), "unexpected failures: {:?}", ok.failures);
        assert!(ok.render().contains("PASS"));

        // 20% down on one row: gate fails and names the row.
        let bad = compare_with_baseline(
            &base,
            0.05,
            &[
                record("realtime", 8, 40_000.0),
                record("realtime", 64, 95_000.0),
            ],
            None,
            None,
        );
        assert!(!bad.ok());
        assert_eq!(bad.failures.len(), 1);
        assert!(bad.failures[0].contains("realtime batch 8"));
    }

    #[test]
    fn simulator_rows_and_new_rows_inform_but_never_gate() {
        let base = parse_baseline(&baseline_json(50_000.0, 90_000.0)).unwrap();
        let diff = compare_with_baseline(
            &base,
            0.05,
            &[
                record("simulator", 0, 1.0),  // collapsed, but not gated
                record("realtime", 256, 1.0), // no baseline row
            ],
            None,
            None,
        );
        assert!(diff.ok(), "unexpected failures: {:?}", diff.failures);
        assert!(diff.lines.iter().any(|l| l.contains("no baseline row")));
    }

    #[test]
    fn telemetry_overhead_budget_gates() {
        let base = parse_baseline(&baseline_json(50_000.0, 90_000.0)).unwrap();
        let telem = |enabled: f64| crate::runtime_bench::TelemetryBenchRecord {
            batch_size: 8,
            sample_ms: 5,
            e2e_mean_ns: 1.0,
            e2e_p50_ns: 1,
            report: Default::default(),
            pps_enabled: enabled,
            pps_disabled: 100_000.0,
            invariant_violations: 0,
        };
        let within = compare_with_baseline(
            &base,
            0.05,
            &[record("realtime", 8, 50_000.0)],
            None,
            Some(&telem(97_000.0)), // 3% overhead
        );
        assert!(within.ok(), "unexpected failures: {:?}", within.failures);

        let breach = compare_with_baseline(
            &base,
            0.05,
            &[record("realtime", 8, 50_000.0)],
            None,
            Some(&telem(90_000.0)), // 10% overhead
        );
        assert!(!breach.ok());
        assert!(breach.failures[0].contains("telemetry overhead"));
    }

    fn recovery(position: &str, us: f64) -> RecoveryRecord {
        RecoveryRecord {
            position: position.to_string(),
            packets: 1000,
            kill_at: 500,
            packets_replayed: 10,
            log_high_water: 32,
            log_truncated: 100,
            recovery_us: us,
            suppressed_duplicates: 5,
            sink_duplicates: 0,
            matches_healthy: true,
            invariant_violations: 0,
            wall_s: 0.1,
            events: Vec::new(),
        }
    }

    #[test]
    fn recovery_positions_round_trip_and_gate_coverage() {
        let sweep: Vec<RecoveryRecord> = ["entry", "mid", "tail", "root"]
            .iter()
            .enumerate()
            .map(|(i, p)| recovery(p, 100.0 * (i + 1) as f64))
            .collect();
        let json = crate::runtime_bench::records_to_json(
            crate::Scale(0.05),
            &[record("realtime", 8, 50_000.0)],
            Some(&sweep[0]),
            Some(&sweep),
            None,
            None,
            None,
        );
        let base = parse_baseline(&json).unwrap();
        assert_eq!(base.recovery_positions.len(), 4, "one row per position");
        assert_eq!(base.recovery_positions[0].0, "entry");
        assert!((base.recovery_positions[3].1 - 400.0).abs() < 0.5);

        // All positions present and correct: times inform, gate passes.
        let ok = compare_with_baseline(
            &base,
            0.05,
            &[record("realtime", 8, 50_000.0)],
            Some(&sweep),
            None,
        );
        assert!(ok.ok(), "unexpected failures: {:?}", ok.failures);
        assert!(ok.lines.iter().any(|l| l.contains("recovery mid")));

        // A much slower recovery still passes (inform-only)...
        let slow: Vec<RecoveryRecord> = sweep
            .iter()
            .map(|r| recovery(&r.position, r.recovery_us * 50.0))
            .collect();
        let ok = compare_with_baseline(
            &base,
            0.05,
            &[record("realtime", 8, 50_000.0)],
            Some(&slow),
            None,
        );
        assert!(ok.ok(), "recovery times must not gate: {:?}", ok.failures);

        // ...but losing a position the baseline covered fails,
        let missing: Vec<RecoveryRecord> = sweep[..3].to_vec();
        let bad = compare_with_baseline(
            &base,
            0.05,
            &[record("realtime", 8, 50_000.0)],
            Some(&missing),
            None,
        );
        assert!(!bad.ok());
        assert!(bad.failures[0].contains("'root'"));

        // ...as does an incorrect failover at any position.
        let mut wrong = sweep.clone();
        wrong[1].matches_healthy = false;
        let bad = compare_with_baseline(
            &base,
            0.05,
            &[record("realtime", 8, 50_000.0)],
            Some(&wrong),
            None,
        );
        assert!(!bad.ok());
        assert!(bad.failures[0].contains("mid"));
    }

    #[test]
    fn scale_mismatch_fails_outright() {
        let base = parse_baseline(&baseline_json(50_000.0, 90_000.0)).unwrap();
        let diff =
            compare_with_baseline(&base, 1.0, &[record("realtime", 8, 50_000.0)], None, None);
        assert!(!diff.ok());
        assert!(diff.failures[0].contains("scale mismatch"));
        assert!(
            diff.lines.is_empty(),
            "no per-row diff on mismatched scales"
        );
    }
}
