//! One harness per paper experiment. See the crate documentation and
//! `EXPERIMENTS.md`.

use chc_baselines::{run_single_nf, sweep_modes, FtmbModel, OpenNfModel, StatelessNfModel};
use chc_core::{
    ChainConfig, ChainController, LogicalDag, NetworkFunction, NfContext, SharedStore, StateClient,
    VertexSpec,
};
use chc_nf::{Nat, PortscanDetector, Scrubber, TrojanDetector};
use chc_packet::{Scope, Trace, TraceConfig, TraceGenerator};
use chc_sim::{SimDuration, VirtualTime};
use chc_store::{Clock, InstanceId, Operation, StoreServer, Value, VertexId};
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::Arc;

/// Experiment scale: 1.0 runs trace sizes comparable to quick CI runs;
/// larger values use more packets (the paper's traces have millions).
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub f64);

impl Default for Scale {
    fn default() -> Self {
        Scale(1.0)
    }
}

impl Scale {
    fn connections(&self, base: usize) -> usize {
        ((base as f64) * self.0).max(50.0) as usize
    }
}

fn eval_trace(scale: Scale, seed: u64) -> Trace {
    TraceGenerator::new(TraceConfig {
        seed,
        connections: scale.connections(800),
        ..TraceConfig::trace2_like(0.001)
    })
    .generate()
}

/// A named factory of one of the paper's evaluated NFs.
type NamedNfFactory = (&'static str, Box<dyn Fn() -> Box<dyn NetworkFunction>>);

fn nf_factories() -> Vec<NamedNfFactory> {
    vec![
        (
            "NAT",
            Box::new(|| Box::new(Nat::default()) as Box<dyn NetworkFunction>),
        ),
        (
            "Portscan detector",
            Box::new(|| Box::new(PortscanDetector::default()) as Box<dyn NetworkFunction>),
        ),
        (
            "Trojan detector",
            Box::new(|| Box::new(TrojanDetector::new()) as Box<dyn NetworkFunction>),
        ),
        (
            "Load balancer",
            Box::new(|| {
                Box::new(chc_nf::LoadBalancer::with_default_backends()) as Box<dyn NetworkFunction>
            }),
        ),
    ]
}

/// Figure 8: per-packet processing-time percentiles per NF under
/// T / EO / EO+C / EO+C+NA.
pub fn fig08_latency(scale: Scale) -> String {
    let trace = eval_trace(scale, 8);
    let mut out =
        String::from("Figure 8 — per-packet processing time (us) [p5 / p25 / p50 / p75 / p95]\n");
    for (name, factory) in nf_factories() {
        let _ = writeln!(out, "  {name}:");
        for (mode, summary, _) in sweep_modes(|| factory(), &trace, 8) {
            let _ = writeln!(
                out,
                "    {:<8} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                mode.label(),
                summary.p5.as_micros_f64(),
                summary.p25.as_micros_f64(),
                summary.p50.as_micros_f64(),
                summary.p75.as_micros_f64(),
                summary.p95.as_micros_f64(),
            );
        }
    }
    out
}

/// Figure 10: per-instance throughput (Gbps) per NF under T / EO / EO+C+NA.
pub fn fig10_throughput(scale: Scale) -> String {
    let trace = eval_trace(scale, 10);
    let mut out = String::from("Figure 10 — per-instance throughput (Gbps)\n");
    for (name, factory) in nf_factories() {
        let rows = sweep_modes(|| factory(), &trace, 8);
        let _ = writeln!(
            out,
            "  {:<18} T={:>5.2}  EO={:>5.2}  EO+C+NA={:>5.2}",
            name, rows[0].2, rows[1].2, rows[3].2
        );
    }
    out
}

/// Figure 9: cross-flow state caching — per-packet latency of the portscan
/// detector before / while / after a second instance shares its per-host
/// state (sharing forces blocking store updates on SYN-ACK/RST packets).
pub fn fig09_crossflow_cache(scale: Scale) -> String {
    let trace = TraceGenerator::new(
        TraceConfig {
            seed: 9,
            connections: scale.connections(600),
            ..TraceConfig::trace2_like(0.001)
        }
        .with_scanners(0.2),
    )
    .generate();
    let config = ChainConfig::default();
    let store = SharedStore::new();
    let mut nf = PortscanDetector::default();
    let mut client = StateClient::new(
        VertexId(1),
        InstanceId(0),
        Box::new(store.clone()),
        config.mode,
        config.costs,
        &nf.state_objects(),
    );
    let n = trace.len();
    let (share_at, merge_at) = (n / 3, 2 * n / 3);
    let mut phase_sums = [0.0f64; 3];
    let mut phase_counts = [0u64; 3];
    for (i, pkt) in trace.iter().enumerate() {
        if i == share_at {
            // A second instance starts processing some of the same hosts: the
            // upstream splitter signals this instance to stop caching the
            // shared likelihood object (Table 1 row 4).
            client.set_exclusive(
                chc_nf::portscan::LIKELIHOOD,
                false,
                Clock::with_root(0, i as u64),
            );
        }
        if i == merge_at {
            client.set_exclusive(
                chc_nf::portscan::LIKELIHOOD,
                true,
                Clock::with_root(0, i as u64),
            );
        }
        let mut ctx = NfContext::new(
            &mut client,
            Clock::with_root(0, i as u64 + 1),
            VirtualTime::from_nanos(pkt.arrival_ns),
        );
        nf.process(pkt, &mut ctx);
        ctx.take_alerts();
        let charge = client.take_charge() + config.costs.base_processing;
        client.take_packet_tokens();
        client.take_pending_callbacks();
        let phase = if i < share_at {
            0
        } else if i < merge_at {
            1
        } else {
            2
        };
        phase_sums[phase] += charge.as_micros_f64();
        phase_counts[phase] += 1;
    }
    let mean = |p: usize| phase_sums[p] / phase_counts[p].max(1) as f64;
    format!(
        "Figure 9 — portscan detector per-packet latency (us, mean)\n  \
         exclusive (cached):        {:.2}\n  \
         shared with 2nd instance:  {:.2}\n  \
         merged back (cached):      {:.2}\n",
        mean(0),
        mean(1),
        mean(2)
    )
}

/// §7.1 "Operation offloading": offloaded operations vs. naive lock +
/// read-modify-write for shared state.
pub fn offload_vs_locks(_scale: Scale) -> String {
    let model = StatelessNfModel::default();
    let naive = model.rmw_packet_latency(2);
    let offload = model.offload_packet_latency(2, true);
    let offload_na = model.offload_packet_latency(2, false);
    format!(
        "§7.1 operation offloading — 2 shared-state updates per packet\n  \
         naive lock + read-modify-write: {:.1} us\n  \
         CHC offloaded (wait for ACK):   {:.1} us   ({:.2}x better)\n  \
         CHC offloaded (no ACK wait):    {:.2} us\n",
        naive.as_micros_f64(),
        offload.as_micros_f64(),
        naive.as_micros_f64() / offload.as_micros_f64(),
        offload_na.as_micros_f64()
    )
}

/// §7.1 "Datastore performance": operations per second of one sharded store
/// server (real threads, wall-clock time).
pub fn datastore_throughput(scale: Scale) -> String {
    let server = StoreServer::new(4);
    let threads = 4;
    let per_thread = (100_000.0 * scale.0.max(0.2)) as u64;
    let start = std::time::Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                let key = chc_store::StateKey::shared(
                    VertexId(t),
                    chc_store::ObjectKey::scoped(
                        "bench",
                        chc_packet::ScopeKey::Port((i % 1_000) as u16),
                    ),
                );
                let op = match i % 3 {
                    0 => Operation::Increment(1),
                    1 => Operation::Get,
                    _ => Operation::Set(Value::Int(i as i64)),
                };
                let _ = server.apply(InstanceId(t), &key, &op, None);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let ops = (per_thread * threads as u64) as f64;
    format!(
        "§7.1 datastore performance — {} ops over {} threads / 4 shards\n  {:.2} M ops/s (mixed get/set/increment)\n",
        ops as u64,
        threads,
        ops / elapsed / 1e6
    )
}

/// §7.2: metadata overheads (clock persistence, packet logging, delete
/// round trip), from the calibrated cost model.
pub fn metadata_overhead(_scale: Scale) -> String {
    let costs = ChainConfig::default().costs;
    let clock = |n: u64| costs.clock_persist.as_micros_f64() / n as f64;
    format!(
        "§7.2 metadata overheads (per packet)\n  \
         clock persisted every packet:   {:.1} us\n  \
         clock persisted every 10 pkts:  {:.1} us\n  \
         clock persisted every 100 pkts: {:.2} us\n  \
         packet log at root (local):     {:.1} us\n  \
         packet log in datastore:        {:.1} us\n  \
         synchronous delete-before-output: {:.1} us (async: ~0, at the risk of duplicates on tail failure)\n",
        clock(1),
        clock(10),
        clock(100),
        costs.root_local_log.as_micros_f64(),
        (costs.root_local_log + costs.store_log_extra).as_micros_f64(),
        costs.delete_roundtrip.as_micros_f64()
    )
}

/// Figure 11 (R3): strongly consistent shared-state updates — CHC vs. an
/// OpenNF-style controller that forwards each packet to every instance.
pub fn fig11_state_sharing(scale: Scale) -> String {
    let trace = eval_trace(scale, 11);
    let cfg = ChainConfig::default();
    let mut nat = Nat::default();
    let mut chc = run_single_nf(&mut nat, cfg.mode, &cfg, &trace, 8);
    let chc_summary = chc.summary();
    let mut opennf = OpenNfModel::default().consistent_update_cdf(2, trace.len(), 11);
    format!(
        "Figure 11 — strongly consistent shared state across 2 NAT instances (per-packet us)\n  \
         CHC    p50={:.1}  p95={:.1}\n  \
         OpenNF p50={:.1}  p95={:.1}   (CHC median {:.0}% lower)\n",
        chc_summary.p50.as_micros_f64(),
        chc_summary.p95.as_micros_f64(),
        opennf.median().as_micros_f64(),
        opennf.percentile(95.0).as_micros_f64(),
        (1.0 - chc_summary.p50.as_micros_f64() / opennf.median().as_micros_f64()) * 100.0
    )
}

/// Figure 12 (R1): state availability — CHC externalization vs. FTMB-style
/// periodic checkpointing.
pub fn fig12_fault_tolerance(scale: Scale) -> String {
    let trace = eval_trace(scale, 12);
    let cfg = ChainConfig::default();
    let mut nat = Nat::default();
    let mut chc = run_single_nf(&mut nat, cfg.mode, &cfg, &trace, 8);
    let chc_summary = chc.summary();
    let ftmb = FtmbModel::default();
    let mut ftmb_hist =
        ftmb.latency_distribution(trace.iter().map(|p| VirtualTime::from_nanos(p.arrival_ns)));
    format!(
        "Figure 12 — fault tolerance overhead on the NAT (per-packet us)\n  \
         CHC   p50={:.1}  p75={:.1}  p95={:.1}\n  \
         FTMB  p50={:.1}  p75={:.1}  p95={:.1}  (periodic checkpoint stalls)\n",
        chc_summary.p50.as_micros_f64(),
        chc_summary.p75.as_micros_f64(),
        chc_summary.p95.as_micros_f64(),
        ftmb_hist.median().as_micros_f64(),
        ftmb_hist.percentile(75.0).as_micros_f64(),
        ftmb_hist.percentile(95.0).as_micros_f64()
    )
}

fn nat_portscan_chain() -> LogicalDag {
    LogicalDag::linear(vec![
        VertexSpec::new(1, "nat", Rc::new(|| Box::new(Nat::default()))),
        VertexSpec::new(
            2,
            "portscan",
            Rc::new(|| Box::new(PortscanDetector::default())),
        ),
    ])
}

/// Figure 13 (R6): per-packet latency around an NF failure and failover
/// (windowed averages of the failover instance's packet times).
pub fn fig13_nf_failover(scale: Scale) -> String {
    let mut out = String::from("Figure 13 — NAT failover: windowed mean packet time (us)\n");
    for load in [0.3, 0.5] {
        let trace = TraceGenerator::new(
            TraceConfig {
                seed: 13,
                connections: scale.connections(500),
                ..TraceConfig::trace2_like(0.001)
            }
            .with_load_fraction(load),
        )
        .generate();
        let mut chain =
            ChainController::new(nat_portscan_chain(), ChainConfig::default(), 13).unwrap();
        chain.inject_trace(&trace);
        let fail_at = trace.packets[trace.len() / 2].arrival_ns;
        chain.run_until(VirtualTime::from_nanos(fail_at));
        chain.fail_instance(VertexId(1), 0);
        // Failure detection plus bringing up the failover container takes a
        // moment; traffic keeps arriving meanwhile and is replayed afterwards,
        // which is what produces the latency spike the figure shows.
        chain.run_until(VirtualTime::from_nanos(fail_at) + SimDuration::from_millis(1));
        chain.failover_instance(VertexId(1), 0);
        chain.run();
        let series = chain.instance_series(VertexId(1), 0);
        // Windowed means after the failure instant.
        let window = SimDuration::from_micros(500);
        let mut peak: f64 = 0.0;
        let mut recovered_after = None;
        for w in 0..40u64 {
            let from =
                VirtualTime::from_nanos(fail_at) + SimDuration::from_nanos(window.as_nanos() * w);
            let to = from + window;
            let mean = series
                .iter()
                .filter(|(t, _)| *t >= from && *t < to)
                .map(|(_, v)| *v)
                .fold((0.0, 0u32), |(s, n), v| (s + v, n + 1));
            if mean.1 > 0 {
                let m = mean.0 / mean.1 as f64;
                peak = peak.max(m);
                if recovered_after.is_none() && m < 50.0 && w > 0 {
                    recovered_after = Some(w as f64 * window.as_millis_f64());
                }
            }
        }
        let _ = writeln!(
            out,
            "  load {:>3.0}%: peak windowed latency {:>8.0} us, back to normal after ~{:.1} ms",
            load * 100.0,
            peak,
            recovered_after.unwrap_or(40.0 * window.as_millis_f64())
        );
    }
    out
}

/// Figure 14 (R6): datastore-instance recovery time vs. number of NAT
/// instances and checkpoint interval.
pub fn fig14_store_recovery(scale: Scale) -> String {
    let mut out = String::from("Figure 14 — shared-state recovery of a store instance\n");
    // Per-op re-execution cost measured from the datastore microbenchmark
    // regime (~0.5 us/op including bookkeeping).
    for instances in [5usize, 10] {
        for interval_ms in [30u64, 75, 150] {
            // Ops issued per instance since the last checkpoint: the paper's
            // NATs process ≈9.4 Gbps ≈ 820 Kpps with one shared-counter
            // update per packet, split across the instances.
            let pps_total = 820_000.0 * scale.0.max(0.2);
            let ops_since_checkpoint = (pps_total * (interval_ms as f64 / 1_000.0)) as usize;
            // Build the WALs and measure actual re-execution (wall clock).
            let key =
                chc_store::StateKey::shared(VertexId(1), chc_store::ObjectKey::named("pkt_count"));
            let mut input = chc_store::RecoveryInput::default();
            for i in 0..instances {
                let mut wal = chc_store::WriteAheadLog::new();
                let share = ops_since_checkpoint / instances;
                for n in 0..share {
                    wal.append(
                        Clock::with_root(0, (i * share + n) as u64 + 1),
                        key.clone(),
                        Operation::Increment(1),
                    );
                }
                input.wals.insert(InstanceId(i as u32), wal);
            }
            let start = std::time::Instant::now();
            let (_, report) = chc_store::recover_shared_state(&input);
            let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
            let _ = writeln!(
                out,
                "  {:>2} NATs, checkpoint every {:>3} ms: {:>7} ops replayed, recovery ≈ {:>7.1} ms",
                instances, interval_ms, report.replayed_ops, wall_ms
            );
        }
    }
    out
}

/// Table 5 (R5): duplicates at the downstream portscan detector when a
/// straggler NAT is cloned, with and without duplicate suppression.
pub fn tab5_duplicates(scale: Scale) -> String {
    let mut out =
        String::from("Table 5 — straggler clone duplicates at the downstream portscan detector\n");
    for load in [0.3, 0.5] {
        for suppression in [false, true] {
            let trace = TraceGenerator::new(
                TraceConfig {
                    seed: 5,
                    connections: scale.connections(400),
                    ..TraceConfig::trace2_like(0.001)
                }
                .with_load_fraction(load),
            )
            .generate();
            let cfg = ChainConfig {
                duplicate_suppression: suppression,
                ..Default::default()
            };
            let mut chain = ChainController::new(nat_portscan_chain(), cfg, 55).unwrap();
            chain.inject_trace(&trace);
            let quarter = trace.packets[trace.len() / 4].arrival_ns;
            chain.run_until(VirtualTime::from_nanos(quarter));
            chain.set_straggler(VertexId(1), 0, SimDuration::from_micros(6));
            chain.clone_for_straggler(VertexId(1), 0);
            chain.run();
            let metrics = chain.metrics();
            let portscan = &metrics.vertex(VertexId(2))[0];
            let _ = writeln!(
                out,
                "  load {:>3.0}%, suppression {:>3}: duplicate packets processed = {:>6}, duplicate state updates = {:>6}, suppressed = {:>6}, end-host duplicates = {}",
                load * 100.0,
                if suppression { "on" } else { "off" },
                portscan.duplicate_packets,
                portscan.duplicate_state_updates,
                portscan.suppressed_duplicates,
                metrics.sink_duplicates
            );
        }
    }
    out
}

/// §7.3 R2: cross-instance state transfer — CHC flow move vs. OpenNF
/// loss-free move.
pub fn r2_state_move(scale: Scale) -> String {
    let trace = TraceGenerator::new(TraceConfig {
        seed: 2,
        connections: scale.connections(800),
        ..TraceConfig::trace2_like(0.001)
    })
    .generate();
    let mut chain = ChainController::new(nat_portscan_chain(), ChainConfig::default(), 2).unwrap();
    chain.inject_trace(&trace);
    let mid = trace.packets[trace.len() / 2].arrival_ns;
    chain.run_until(VirtualTime::from_nanos(mid));
    let (_, new_index) = chain.scale_up(VertexId(1));
    // Move a batch of flows to the new instance.
    let keys: Vec<_> = trace
        .packets
        .iter()
        .map(|p| Scope::FiveTuple.key_of(p))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .take(200)
        .collect();
    let moved = keys.len();
    let start = chain.now();
    chain.move_flows(VertexId(1), &keys, new_index);
    chain.run();
    let completed = chain
        .with_instance(VertexId(1), new_index, |a| a.handover_completed_at)
        .flatten()
        .unwrap_or(start);
    let chc_ms = (completed - start).as_millis_f64();
    let opennf_ms = OpenNfModel::default().loss_free_move(4_000).as_millis_f64();
    // Scale OpenNF's per-flow copy cost to the same number of flows moved.
    let opennf_scaled = OpenNfModel::default().loss_free_move(moved).as_millis_f64();
    format!(
        "§7.3 R2 — reallocating {moved} flows to a new NAT instance\n  \
         CHC handover (no state copied):      {:.3} ms\n  \
         OpenNF loss-free move ({moved} flows): {:.3} ms\n  \
         OpenNF loss-free move (4000 flows):  {:.3} ms (paper's scenario)\n",
        chc_ms, opennf_scaled, opennf_ms
    )
}

/// §7.3 R4: chain-wide ordering — Trojan detection accuracy when upstream
/// scrubbers are slowed down, CHC logical clocks vs. observation order.
pub fn r4_chain_ordering(scale: Scale) -> String {
    let mut out = String::from("R4 — Trojan signatures detected (11 injected)\n");
    for (label, slow_instances) in [
        ("W1 (1 slow scrubber)", 1usize),
        ("W2 (2 slow)", 2),
        ("W3 (3 slow)", 3),
    ] {
        let mut detected = Vec::new();
        for use_clocks in [true, false] {
            let trace = TraceGenerator::new(
                TraceConfig {
                    seed: 4,
                    connections: scale.connections(400),
                    trojan_background_fraction: 0.1,
                    ..TraceConfig::trace2_like(0.001)
                }
                .with_trojans(11),
            )
            .generate();
            let detector: Rc<dyn Fn() -> Box<dyn NetworkFunction>> = if use_clocks {
                Rc::new(|| Box::new(TrojanDetector::new()))
            } else {
                Rc::new(|| Box::new(TrojanDetector::without_chain_clocks()))
            };
            let mut dag = LogicalDag::linear(vec![VertexSpec::new(
                1,
                "scrubber",
                Rc::new(|| Box::new(Scrubber::new())),
            )
            .with_parallelism(3)]);
            let trojan = dag.add_vertex(VertexSpec::new(2, "trojan", detector).off_path());
            dag.add_edge(VertexId(1), trojan);
            let mut chain = ChainController::new(dag, ChainConfig::default(), 44).unwrap();
            // Partition scrubber traffic by service port so SSH/FTP/IRC flows
            // land on different instances (the Figure 2 deployment), and slow
            // some of them down.
            chain.inject_trace(&trace);
            for idx in 0..slow_instances {
                chain.set_straggler(VertexId(1), idx, SimDuration::from_micros(75));
            }
            chain.run();
            let metrics = chain.metrics();
            let found = metrics
                .alerts()
                .iter()
                .filter(|(_, m)| m.contains("trojan"))
                .count();
            detected.push(found);
        }
        let _ = writeln!(
            out,
            "  {label}: CHC (logical clocks) = {}/11, no chain-wide ordering = {}/11",
            detected[0], detected[1]
        );
    }
    out
}

/// §7.3 root failover: time for a failover root to resume stamping.
pub fn root_recovery(_scale: Scale) -> String {
    let costs = ChainConfig::default().costs;
    // One store read for the persisted clock plus one query round trip to the
    // downstream instances for the current flow allocation.
    let t = costs.store_rtt() + costs.inter_nf_link.times(2);
    format!(
        "§7.3 root failover — clock read + flow-allocation query ≈ {:.1} us\n",
        t.as_micros_f64()
    )
}

/// The real-thread chain engine section (text part; the records also feed
/// `paper_eval --json`).
pub fn runtime_throughput(scale: Scale) -> String {
    crate::runtime_bench::runtime_chain_experiment(scale).0
}

/// Real-thread NF failover recovery time (the engine-side counterpart of
/// Figure 13; also emitted as JSON by `paper_eval --json`).
pub fn runtime_recovery(scale: Scale) -> String {
    crate::runtime_bench::runtime_recovery_experiment(scale).0
}

/// Run every experiment and concatenate the reports.
pub fn run_all(scale: Scale) -> String {
    let mut out = String::new();
    type Section = (&'static str, fn(Scale) -> String);
    let sections: Vec<Section> = vec![
        ("fig08", fig08_latency),
        ("fig09", fig09_crossflow_cache),
        ("fig10", fig10_throughput),
        ("offload", offload_vs_locks),
        ("datastore", datastore_throughput),
        ("metadata", metadata_overhead),
        ("fig11", fig11_state_sharing),
        ("fig12", fig12_fault_tolerance),
        ("fig13", fig13_nf_failover),
        ("fig14", fig14_store_recovery),
        ("tab5", tab5_duplicates),
        ("r2", r2_state_move),
        ("r4", r4_chain_ordering),
        ("root", root_recovery),
        ("runtime", runtime_throughput),
        ("recovery", runtime_recovery),
    ];
    for (name, f) in sections {
        let _ = writeln!(out, "==== {name} ====");
        out.push_str(&f(scale));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiments_produce_reports() {
        let s = Scale(0.2);
        assert!(fig09_crossflow_cache(s).contains("shared"));
        assert!(offload_vs_locks(s).contains("offloaded"));
        assert!(metadata_overhead(s).contains("clock"));
        assert!(root_recovery(s).contains("failover"));
    }

    #[test]
    fn r2_move_is_orders_of_magnitude_faster_than_opennf() {
        let report = r2_state_move(Scale(0.3));
        assert!(report.contains("CHC handover"));
    }
}
