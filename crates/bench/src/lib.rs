//! # chc-bench
//!
//! Benchmark harnesses that regenerate every table and figure of the CHC
//! paper's evaluation (§7). Each `fig*`/`tab*`/`r*` function runs the
//! corresponding experiment on the simulator (or, for the datastore
//! microbenchmark, on real threads) and returns a human-readable report whose
//! rows mirror what the paper plots. The `paper_eval` binary runs them all;
//! `EXPERIMENTS.md` records paper-reported versus measured values.
//!
//! Absolute numbers are not expected to match the paper's testbed; the
//! *shape* of each result (which system wins, by roughly what factor, where
//! behaviour changes) is the reproduction target — see `DESIGN.md`.

pub mod baseline;
pub mod experiments;
pub mod faultgen;
pub mod runtime_bench;

pub use baseline::{
    compare_with_baseline, parse_baseline, Baseline, BaselineDiff, PPS_REGRESSION_BUDGET_PCT,
    TELEMETRY_OVERHEAD_BUDGET_PCT,
};
pub use experiments::*;
pub use runtime_bench::{
    bench_realtime, bench_simulator, position_plan, records_to_json, runtime_chain_experiment,
    runtime_recovery_by_position_experiment, runtime_recovery_experiment,
    runtime_telemetry_experiment, runtime_trace_experiment, runtime_trace_experiment_at,
    scale_for_packets, store_backend_experiment, store_batch_experiment, RecoveryRecord,
    RuntimeBenchRecord, StoreBackendRecord, StoreBatchRecord, TelemetryBenchRecord, TraceRunRecord,
    BENCH_CHAIN, DEFAULT_BATCH_SIZES, KILL_POSITIONS,
};
