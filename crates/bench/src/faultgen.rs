//! Seeded generation of fault schedules, shared by the simulator and the
//! real-thread failure tests.
//!
//! A failure scenario is just data — which instance dies, at which logical
//! clock — so both substrates can execute *the same* seeded scenario: the
//! runtime through [`chc_runtime::FaultPlan`], the simulator by running to
//! the trigger packet's arrival time and calling
//! `ChainController::fail_instance` / `failover_instance`. New failure
//! scenarios in tests are one-liners:
//!
//! ```
//! use chc_bench::faultgen::FaultGen;
//! use chc_store::VertexId;
//!
//! let kill = FaultGen::new(42).entry_kill(VertexId(1), 1, 1_600);
//! assert!(kill.at_counter >= 1_600 / 3 && kill.at_counter < 2 * 1_600 / 3);
//! let plan = chc_runtime::FaultPlan::new().kill(kill.vertex, kill.index, kill.at_counter);
//! assert_eq!(plan.kills, vec![kill]);
//! ```

use chc_runtime::{FaultPlan, InstanceKill, ShardFault};
use chc_store::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded source of fault schedules. The same seed always yields the same
/// schedule, so a failing scenario reproduces from its seed alone.
pub struct FaultGen {
    rng: StdRng,
}

impl FaultGen {
    /// Create a generator for `seed`.
    pub fn new(seed: u64) -> FaultGen {
        FaultGen {
            // Domain-separate from the trace generator so a shared seed does
            // not correlate the traffic with the fault schedule.
            rng: StdRng::seed_from_u64(seed ^ 0xFA17_F1A6_0000_0000),
        }
    }

    /// Sample a kill of one instance of `vertex` — any chain position:
    /// entry, mid-chain or tail — triggered in the middle third of a
    /// `trace_len`-packet trace: late enough that real state has
    /// accumulated, early enough that recovery is exercised by live traffic.
    pub fn kill_at(
        &mut self,
        vertex: VertexId,
        parallelism: usize,
        trace_len: usize,
    ) -> InstanceKill {
        let lo = (trace_len / 3).max(1) as u64;
        // Keep the sample range non-empty and the trigger inside the trace
        // even for degenerate 1–2 packet traces.
        let hi = (2 * trace_len / 3).max(lo as usize + 1) as u64;
        InstanceKill {
            vertex,
            index: self.rng.gen_range(0..parallelism.max(1)),
            at_counter: self.rng.gen_range(lo..hi).min(trace_len.max(1) as u64),
        }
    }

    /// Backwards-compatible name from when only entry kills were legal;
    /// identical sampling to [`FaultGen::kill_at`].
    pub fn entry_kill(
        &mut self,
        vertex: VertexId,
        parallelism: usize,
        trace_len: usize,
    ) -> InstanceKill {
        self.kill_at(vertex, parallelism, trace_len)
    }

    /// Sample a root-kill trigger in the middle third of the trace (the
    /// stamping thread fail-stops just before injecting it and the warm
    /// standby takes over).
    pub fn root_kill(&mut self, trace_len: usize) -> u64 {
        let lo = (trace_len / 3).max(1) as u64;
        let hi = (2 * trace_len / 3).max(lo as usize + 1) as u64;
        self.rng.gen_range(lo..hi).min(trace_len.max(1) as u64)
    }

    /// Sample a shard restart in the middle third, checkpointed somewhere in
    /// the first third (degenerate traces collapse both to valid triggers).
    pub fn shard_restart(&mut self, shards: usize, trace_len: usize) -> ShardFault {
        let third = (trace_len / 3).max(2) as u64;
        let at_counter = self
            .rng
            .gen_range(third..2 * third)
            .min(trace_len.max(1) as u64);
        ShardFault {
            shard: self.rng.gen_range(0..shards.max(1)),
            at_counter,
            checkpoint_at: Some(self.rng.gen_range(1..third).min(at_counter)),
        }
    }

    /// A full single-failure plan: one instance kill at any position.
    pub fn kill_plan(
        &mut self,
        vertex: VertexId,
        parallelism: usize,
        trace_len: usize,
    ) -> FaultPlan {
        let kill = self.kill_at(vertex, parallelism, trace_len);
        FaultPlan::new().kill(kill.vertex, kill.index, kill.at_counter)
    }

    /// Backwards-compatible name for [`FaultGen::kill_plan`].
    pub fn entry_kill_plan(
        &mut self,
        vertex: VertexId,
        parallelism: usize,
        trace_len: usize,
    ) -> FaultPlan {
        self.kill_plan(vertex, parallelism, trace_len)
    }

    /// A full single-failure plan: the root stamping thread dies mid-trace.
    pub fn root_kill_plan(&mut self, trace_len: usize) -> FaultPlan {
        FaultPlan::new().kill_root(self.root_kill(trace_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed_and_in_bounds() {
        for seed in [1u64, 7, 99] {
            let a = FaultGen::new(seed).entry_kill(VertexId(1), 2, 1200);
            let b = FaultGen::new(seed).entry_kill(VertexId(1), 2, 1200);
            assert_eq!(a, b, "same seed must yield the same schedule");
            assert!(a.index < 2);
            assert!((400..800).contains(&a.at_counter));

            let s = FaultGen::new(seed).shard_restart(4, 1200);
            assert!(s.shard < 4);
            assert!((400..800).contains(&s.at_counter));
            assert!(s.checkpoint_at.unwrap() < 400);
        }
        let a = FaultGen::new(3).entry_kill(VertexId(1), 4, 9000);
        let b = FaultGen::new(4).entry_kill(VertexId(1), 4, 9000);
        assert_ne!(a, b, "different seeds should (here) differ");
    }

    #[test]
    fn position_generic_and_root_kill_generators() {
        let k = FaultGen::new(9).kill_at(VertexId(3), 2, 1200);
        assert!((400..800).contains(&k.at_counter));
        assert_eq!(k.vertex, VertexId(3));
        let r = FaultGen::new(9).root_kill(1200);
        assert!((400..800).contains(&r));
        assert_eq!(FaultGen::new(9).root_kill_plan(1200).root_kill, Some(r));
        // entry_kill remains an alias of kill_at under the same seed.
        assert_eq!(
            FaultGen::new(11).entry_kill(VertexId(1), 2, 900),
            FaultGen::new(11).kill_at(VertexId(1), 2, 900)
        );
    }

    #[test]
    fn plans_survive_tiny_traces() {
        for (seed, len) in [(5u64, 1usize), (5, 2), (6, 3), (7, 4)] {
            let kill = FaultGen::new(seed).entry_kill(VertexId(1), 1, len);
            assert!(
                kill.at_counter >= 1 && kill.at_counter <= len as u64,
                "len {len}: trigger {} outside trace",
                kill.at_counter
            );
            let shard = FaultGen::new(seed).shard_restart(4, len);
            assert!(shard.at_counter >= 1 && shard.at_counter <= len as u64);
            assert!(shard.checkpoint_at.unwrap() <= shard.at_counter);
        }
        let plan = FaultGen::new(5).entry_kill_plan(VertexId(1), 1, 4);
        assert_eq!(plan.kills.len(), 1);
    }
}
