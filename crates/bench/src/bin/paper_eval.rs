//! Regenerate every table and figure of the CHC paper's evaluation.
//!
//! Usage:
//!   cargo run --release -p chc-bench --bin paper_eval [-- --scale 1.0] [-- --only fig08] [-- --json bench.json]
//!
//! `--json <path>` additionally runs the real-thread chain benchmark
//! (firewall → NAT → LB at the default batch sizes, plus the simulator
//! comparison row) and writes the machine-readable records to `path`, so
//! bench trajectories can be recorded as `BENCH_*.json` files.

use chc_bench::{
    records_to_json, run_all, runtime_chain_experiment, runtime_recovery_experiment, Scale,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::default();
    let mut only: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                    scale = Scale(v);
                }
                i += 2;
            }
            "--only" => {
                only = args.get(i + 1).cloned();
                i += 2;
            }
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 2;
            }
            _ => i += 1,
        }
    }

    println!("CHC paper evaluation reproduction (scale = {})", scale.0);
    println!("================================================================\n");

    if let Some(path) = &json_path {
        // The JSON mode leads with the runtime benchmark so the acceptance
        // numbers (real-thread chain throughput at two batch sizes, plus
        // the failover recovery metrics) are printed and recorded even when
        // `--only` filters the text report.
        let (text, records) = runtime_chain_experiment(scale);
        println!("==== runtime ====");
        println!("{text}");
        let (rec_text, recovery) = runtime_recovery_experiment(scale);
        println!("==== recovery ====");
        println!("{rec_text}");
        let json = records_to_json(scale, &records, Some(&recovery));
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {} bench records to {path}", records.len()),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        if only.is_none() {
            return;
        }
    }

    let report = run_all(scale);
    match only {
        None => println!("{report}"),
        Some(section) => {
            let mut printing = false;
            for line in report.lines() {
                if line.starts_with("==== ") {
                    printing = line.contains(&section);
                }
                if printing {
                    println!("{line}");
                }
            }
        }
    }
}
