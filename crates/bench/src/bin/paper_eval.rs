//! Regenerate every table and figure of the CHC paper's evaluation.
//!
//! Usage: `cargo run --release -p chc-bench --bin paper_eval [-- --scale 1.0] [-- --only fig08]`

use chc_bench::{run_all, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::default();
    let mut only: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                    scale = Scale(v);
                }
                i += 2;
            }
            "--only" => {
                only = args.get(i + 1).cloned();
                i += 2;
            }
            _ => i += 1,
        }
    }

    println!("CHC paper evaluation reproduction (scale = {})", scale.0);
    println!("================================================================\n");
    let report = run_all(scale);
    match only {
        None => println!("{report}"),
        Some(section) => {
            let mut printing = false;
            for line in report.lines() {
                if line.starts_with("==== ") {
                    printing = line.contains(&section);
                }
                if printing {
                    println!("{line}");
                }
            }
        }
    }
}
