//! Regenerate every table and figure of the CHC paper's evaluation.
//!
//! Usage:
//!   cargo run --release -p chc-bench --bin paper_eval [-- --scale 1.0] [-- --only fig08] [-- --json bench.json]
//!
//! `--json <path>` additionally runs the real-thread chain benchmark
//! (firewall → NAT → LB at the default batch sizes, plus the simulator
//! comparison row), the failover recovery experiment, the recovery-time-vs-
//! kill-position sweep (entry, mid, tail and root kills on the same trace),
//! and the telemetry experiment (per-stage latency decomposition, gauge
//! time series, instrumentation overhead including 1%-sampled causal
//! tracing and the invariant sentinel), the store fast-path sweep, and the
//! storage-backend comparison (journaled throughput + restart cost vs
//! journal depth on the in-memory and append-only engines), and writes the
//! machine-readable records to `path`, so bench trajectories can be
//! recorded as `BENCH_*.json` files.
//!
//! `--trace-out <path>` runs the traced-failover experiment (a kill at
//! `--trace-kill <entry|mid|tail|root>`, default entry, under full flow
//! sampling) and writes the validated Chrome trace-event JSON to `path` —
//! load it at <https://ui.perfetto.dev>.
//!
//! `--baseline <path>` diffs this run's records against a prior
//! `BENCH_*.json` and exits nonzero on a throughput regression beyond 10%,
//! a telemetry-overhead budget breach beyond 5%, or a recovery-vs-position
//! row that disappeared or stopped matching the healthy run.

use chc_bench::{
    compare_with_baseline, parse_baseline, records_to_json, run_all, runtime_chain_experiment,
    runtime_recovery_by_position_experiment, runtime_recovery_experiment,
    runtime_telemetry_experiment, runtime_trace_experiment_at, scale_for_packets,
    store_backend_experiment, store_batch_experiment, Scale, KILL_POSITIONS,
};
use std::time::Duration;

const USAGE: &str = "\
Usage: paper_eval [OPTIONS]

Options:
  --scale <f64>             trace scale factor (default 1.0)
  --packets <u64>           size the trace by approximate packet count instead
                            of --scale (mutually exclusive with --scale)
  --only <section>          print only report sections whose header contains <section>
  --json <path>             also run the runtime / recovery / telemetry benchmarks
                            plus the store fast-path sweep (write-behind on/off ×
                            store batch caps × ring-wait policies) and write
                            machine-readable records to <path>
  --sample-ms <u64>         gauge sampling cadence for the telemetry benchmark,
                            in milliseconds (default 5; requires --json)
  --telemetry-jsonl <path>  also write the benchmark runs' event journals and
                            trace spans as JSON lines to <path> (requires --json)
  --trace-out <path>        run a traced failover (every flow sampled) and write
                            Perfetto-loadable Chrome trace JSON to <path>;
                            exits nonzero on sentinel violations
  --trace-kill <position>   chain position the traced failover kills:
                            entry|mid|tail|root (default entry; requires
                            --trace-out)
  --baseline <path>         diff this run against a prior BENCH_*.json and exit
                            nonzero on >10% throughput regression, a >5%
                            telemetry-overhead budget breach, or a lost /
                            incorrect recovery-vs-position row (requires --json)
  -h, --help                print this help";

fn usage_error(msg: &str) -> ! {
    eprintln!("paper_eval: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// The value of flag `args[i]`, or a usage error naming the flag.
fn value_of(args: &[String], i: usize) -> &str {
    match args.get(i + 1) {
        Some(v) => v,
        None => usage_error(&format!("{} requires a value", args[i])),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::default();
    let mut scale_set = false;
    let mut packets: Option<u64> = None;
    let mut only: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut sample_ms: u64 = 5;
    let mut telemetry_jsonl: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut trace_kill: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let v = value_of(&args, i);
                scale = Scale(v.parse::<f64>().unwrap_or_else(|_| {
                    usage_error(&format!("invalid --scale value '{v}' (expected a number)"))
                }));
                scale_set = true;
                i += 2;
            }
            "--packets" => {
                let v = value_of(&args, i);
                let n = v.parse::<u64>().unwrap_or_else(|_| {
                    usage_error(&format!(
                        "invalid --packets value '{v}' (expected an integer)"
                    ))
                });
                if n == 0 {
                    usage_error("--packets must be at least 1");
                }
                packets = Some(n);
                i += 2;
            }
            "--only" => {
                only = Some(value_of(&args, i).to_string());
                i += 2;
            }
            "--json" => {
                json_path = Some(value_of(&args, i).to_string());
                i += 2;
            }
            "--sample-ms" => {
                let v = value_of(&args, i);
                sample_ms = v.parse::<u64>().unwrap_or_else(|_| {
                    usage_error(&format!(
                        "invalid --sample-ms value '{v}' (expected an integer)"
                    ))
                });
                if sample_ms == 0 {
                    usage_error("--sample-ms must be at least 1");
                }
                i += 2;
            }
            "--telemetry-jsonl" => {
                telemetry_jsonl = Some(value_of(&args, i).to_string());
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(value_of(&args, i).to_string());
                i += 2;
            }
            "--trace-kill" => {
                let v = value_of(&args, i);
                if !KILL_POSITIONS.contains(&v) {
                    usage_error(&format!(
                        "invalid --trace-kill value '{v}' (expected entry|mid|tail|root)"
                    ));
                }
                trace_kill = Some(v.to_string());
                i += 2;
            }
            "--baseline" => {
                baseline_path = Some(value_of(&args, i).to_string());
                i += 2;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument '{other}'")),
        }
    }
    if json_path.is_none() && telemetry_jsonl.is_some() {
        usage_error("--telemetry-jsonl requires --json");
    }
    if json_path.is_none() && baseline_path.is_some() {
        usage_error("--baseline requires --json");
    }
    if trace_out.is_none() && trace_kill.is_some() {
        usage_error("--trace-kill requires --trace-out");
    }
    if let Some(n) = packets {
        if scale_set {
            usage_error("--packets and --scale are mutually exclusive");
        }
        scale = scale_for_packets(n);
        println!("--packets {n} -> scale {:.4}", scale.0);
    }

    println!("CHC paper evaluation reproduction (scale = {})", scale.0);
    println!("================================================================\n");

    if let Some(path) = &trace_out {
        let position = trace_kill.as_deref().unwrap_or("entry");
        let (text, record) = runtime_trace_experiment_at(scale, position);
        println!("==== trace ====");
        println!("{text}");
        match std::fs::write(path, &record.trace_json) {
            Ok(()) => println!(
                "wrote {} trace spans ({} events) to {path} — load at https://ui.perfetto.dev",
                record.spans, record.shape.events
            ),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        if record.invariant_violations > 0 {
            eprintln!(
                "paper_eval: traced failover raised {} invariant violation(s)",
                record.invariant_violations
            );
            std::process::exit(3);
        }
        println!();
    }

    if let Some(path) = &json_path {
        // The JSON mode leads with the runtime benchmark so the acceptance
        // numbers (real-thread chain throughput at two batch sizes, plus
        // the failover recovery metrics) are printed and recorded even when
        // `--only` filters the text report.
        let (text, records) = runtime_chain_experiment(scale);
        println!("==== runtime ====");
        println!("{text}");
        let (rec_text, recovery) = runtime_recovery_experiment(scale);
        println!("==== recovery ====");
        println!("{rec_text}");
        let (pos_text, by_position) = runtime_recovery_by_position_experiment(scale);
        println!("==== recovery-by-position ====");
        println!("{pos_text}");
        let (tel_text, telemetry) =
            runtime_telemetry_experiment(scale, Duration::from_millis(sample_ms));
        println!("==== telemetry ====");
        println!("{tel_text}");
        let (sb_text, store_batch) = store_batch_experiment(scale);
        println!("==== store-batch ====");
        println!("{sb_text}");
        let (be_text, store_backend) = store_backend_experiment(scale);
        println!("==== store-backend ====");
        println!("{be_text}");
        let json = records_to_json(
            scale,
            &records,
            Some(&recovery),
            Some(&by_position),
            Some(&telemetry),
            Some(&store_batch),
            Some(&store_backend),
        );
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {} bench records to {path}", records.len()),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        if let Some(jsonl_path) = &telemetry_jsonl {
            // One JSONL schema: journal events (invariant violations
            // included, were any detected) and causal-trace spans side by
            // side. The spans continue the telemetry run's seq numbering
            // so the file stays totally ordered per run.
            let mut lines = String::new();
            for e in telemetry.report.events.iter().chain(recovery.events.iter()) {
                lines.push_str(&e.to_json());
                lines.push('\n');
            }
            let seq0 = telemetry
                .report
                .events
                .last()
                .map(|e| e.seq + 1)
                .unwrap_or(0);
            for (i, s) in telemetry.report.trace_spans.iter().enumerate() {
                lines.push_str(&s.to_json(seq0 + i as u64));
                lines.push('\n');
            }
            match std::fs::write(jsonl_path, &lines) {
                Ok(()) => println!(
                    "wrote {} journal events + trace spans to {jsonl_path}",
                    lines.lines().count()
                ),
                Err(e) => {
                    eprintln!("failed to write {jsonl_path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(base_path) = &baseline_path {
            println!("==== baseline ====");
            let base_json = match std::fs::read_to_string(base_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("failed to read {base_path}: {e}");
                    std::process::exit(1);
                }
            };
            let base = match parse_baseline(&base_json) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("failed to parse {base_path}: {e}");
                    std::process::exit(1);
                }
            };
            let diff = compare_with_baseline(
                &base,
                scale.0,
                &records,
                Some(&by_position),
                Some(&telemetry),
            );
            println!("vs {base_path} (scale {}):", base.scale);
            print!("{}", diff.render());
            if !diff.ok() {
                eprintln!(
                    "paper_eval: baseline gate failed ({} breach(es))",
                    diff.failures.len()
                );
                std::process::exit(3);
            }
        }
        if only.is_none() {
            return;
        }
    }
    if trace_out.is_some() && json_path.is_none() && only.is_none() {
        return;
    }

    let report = run_all(scale);
    match only {
        None => println!("{report}"),
        Some(section) => {
            let mut printing = false;
            for line in report.lines() {
                if line.starts_with("==== ") {
                    printing = line.contains(&section);
                }
                if printing {
                    println!("{line}");
                }
            }
        }
    }
}
