//! Real-thread chain benchmarks: packets/s and latency percentiles for an
//! NF chain executed on both substrates (the `chc_sim` discrete-event
//! simulator and the `chc_runtime` thread engine), at several batch sizes.
//!
//! The runtime rows measure *wall-clock* throughput the way §7 of the paper
//! measures its testbed; the simulator row reports virtual-time goodput plus
//! the wall time it took to simulate, which contextualizes how much faster
//! than real time the simulation runs at small scales.

use crate::Scale;
use chc_core::{ChainConfig, ChainController, LogicalDag, SinkActor, VertexSpec};
use chc_nf::{Firewall, LoadBalancer, Nat};
use chc_packet::{Trace, TraceConfig, TraceGenerator, TRACE_PPM_FULL};
use chc_runtime::RingWait;
use chc_runtime::{
    chrome_trace_json, run_chain_realtime, validate_chrome_trace, RuntimeConfig, SpanKind,
    TelemetryConfig, TelemetryReport, TraceShape,
};
use chc_sim::Histogram;
use chc_store::{
    BackendKind, Clock, InstanceId, ObjectKey, Operation, StateKey, StoreServer, Value, VertexId,
};
use chc_telemetry::{Event, HistSummary};
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The chain every record in this module measures.
pub const BENCH_CHAIN: &str = "firewall-nat-lb";

/// One measured configuration, serializable to JSON by [`RuntimeBenchRecord::to_json`].
#[derive(Debug, Clone)]
pub struct RuntimeBenchRecord {
    /// Chain label (see [`BENCH_CHAIN`]).
    pub chain: String,
    /// `"realtime"` or `"simulator"`.
    pub substrate: String,
    /// Ring batch size (0 for the simulator, which has no rings).
    pub batch_size: usize,
    /// Packets injected at the root.
    pub packets: u64,
    /// Distinct packets delivered to the sink.
    pub delivered: u64,
    /// Wall-clock seconds the run took.
    pub wall_s: f64,
    /// End-to-end throughput in packets/s (wall clock for the runtime,
    /// virtual time for the simulator).
    pub pps: f64,
    /// End-to-end goodput in Gbit/s (same timebase as `pps`).
    pub gbps: f64,
    /// Median root→sink per-packet latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile root→sink per-packet latency in microseconds.
    pub p99_us: f64,
    /// Operations served by the datastore during the run (0 where the
    /// substrate does not expose the counter).
    pub store_ops: u64,
}

impl RuntimeBenchRecord {
    /// Render as a JSON object (hand-rolled: the build environment has no
    /// serde_json; every field is numeric or a known-safe ASCII label).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"chain\":\"{}\",\"substrate\":\"{}\",\"batch_size\":{},\"packets\":{},\
             \"delivered\":{},\"wall_s\":{:.6},\"pps\":{:.1},\"gbps\":{:.4},\
             \"p50_us\":{:.2},\"p99_us\":{:.2},\"store_ops\":{}}}",
            self.chain,
            self.substrate,
            self.batch_size,
            self.packets,
            self.delivered,
            self.wall_s,
            self.pps,
            self.gbps,
            self.p50_us,
            self.p99_us,
            self.store_ops
        )
    }
}

/// The 3-NF chain of the paper's running example: firewall → NAT → LB.
pub fn bench_chain() -> LogicalDag {
    LogicalDag::linear(vec![
        VertexSpec::new(
            1,
            "firewall",
            Rc::new(|| Box::new(Firewall::with_default_policy())),
        ),
        VertexSpec::new(2, "nat", Rc::new(|| Box::new(Nat::default()))),
        VertexSpec::new(
            3,
            "lb",
            Rc::new(|| Box::new(LoadBalancer::with_default_backends())),
        ),
    ])
}

fn bench_trace(scale: Scale) -> Trace {
    TraceGenerator::new(TraceConfig {
        seed: 97,
        connections: ((2_000.0 * scale.0).max(100.0)) as usize,
        mean_packets_per_connection: 24,
        ..TraceConfig::default()
    })
    .generate()
}

/// The scale factor whose bench trace holds roughly `packets` packets
/// (scale 1 generates 2 000 connections averaging 24 packets each, so one
/// packet costs 1/48 000 of a scale unit; the generator floors at 100
/// connections). Backs `paper_eval --packets`.
pub fn scale_for_packets(packets: u64) -> Scale {
    Scale(packets as f64 / 48_000.0)
}

/// Measure the real-thread engine at each batch size.
pub fn bench_realtime(scale: Scale, batch_sizes: &[usize]) -> Vec<RuntimeBenchRecord> {
    let trace = bench_trace(scale);
    let dag = bench_chain();
    batch_sizes
        .iter()
        .map(|&batch| {
            let rt_cfg = RuntimeConfig::with_batch_size(batch);
            // Best of three: these rows feed the `--baseline` regression
            // gate, and on a shared host a single run's throughput is
            // dominated by scheduler luck (spreads above 30% observed);
            // the per-config ceiling is the stable, comparable number.
            let (report, wall_s) = (0..3)
                .map(|_| {
                    let start = Instant::now();
                    let report = run_chain_realtime(&dag, ChainConfig::default(), &rt_cfg, &trace)
                        .expect("valid dag");
                    (report, start.elapsed().as_secs_f64())
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one run");
            assert_eq!(report.duplicates, 0, "healthy runs deliver exactly once");
            let summary = report.latency_summary();
            let p99 = report.latency.percentile(99.0);
            RuntimeBenchRecord {
                chain: BENCH_CHAIN.to_string(),
                substrate: "realtime".to_string(),
                batch_size: batch,
                packets: report.injected,
                delivered: report.delivered as u64,
                wall_s,
                pps: report.pps(),
                gbps: report.gbps(),
                p50_us: summary.p50.as_micros_f64(),
                p99_us: p99 as f64 / 1e3,
                store_ops: report.store_ops,
            }
        })
        .collect()
}

/// Measure the same chain on the discrete-event simulator (virtual-time
/// throughput; wall time is the cost of simulating).
pub fn bench_simulator(scale: Scale) -> RuntimeBenchRecord {
    let trace = bench_trace(scale);
    let mut chain = ChainController::new(bench_chain(), ChainConfig::default(), 97).unwrap();
    chain.inject_trace(&trace);
    let start = Instant::now();
    chain.run();
    let wall_s = start.elapsed().as_secs_f64();
    let metrics = chain.metrics();

    // Root→sink latency in virtual time: sink receive time minus the
    // packet's arrival at the chain entry (clock counter n is the n-th
    // injected packet).
    let mut latency = Histogram::new();
    let sink = chain
        .sim
        .actor::<SinkActor>(chain.handles().sink)
        .expect("sink");
    for (at, clock, _) in &sink.received {
        let idx = (clock.counter() - 1) as usize;
        if let Some(pkt) = trace.packets.get(idx) {
            latency.record_nanos(at.as_nanos().saturating_sub(pkt.arrival_ns));
        }
    }
    // Virtual-time pps across the delivery span.
    let span_s = sink
        .received
        .iter()
        .map(|(t, _, _)| t.as_nanos())
        .max()
        .zip(sink.received.iter().map(|(t, _, _)| t.as_nanos()).min())
        .map(|(hi, lo)| (hi.saturating_sub(lo)) as f64 / 1e9)
        .unwrap_or(0.0);
    let pps = if span_s > 0.0 {
        metrics.sink_delivered as f64 / span_s
    } else {
        0.0
    };

    RuntimeBenchRecord {
        chain: BENCH_CHAIN.to_string(),
        substrate: "simulator".to_string(),
        batch_size: 0,
        packets: metrics.root.packets_in,
        delivered: metrics.sink_delivered as u64,
        wall_s,
        pps,
        gbps: metrics.sink_gbps,
        p50_us: latency.median().as_micros_f64(),
        p99_us: latency.percentile(99.0).as_micros_f64(),
        store_ops: 0,
    }
}

/// The default batch sizes the evaluation sweeps: one small (latency-lean)
/// and one large (throughput-lean).
pub const DEFAULT_BATCH_SIZES: [usize; 2] = [8, 64];

/// Run the full substrate comparison, returning the human-readable section
/// and the machine-readable records.
pub fn runtime_chain_experiment(scale: Scale) -> (String, Vec<RuntimeBenchRecord>) {
    let mut records = bench_realtime(scale, &DEFAULT_BATCH_SIZES);
    records.push(bench_simulator(scale));

    let mut out = String::from(
        "Real-thread chain engine — firewall → NAT → LB (3 NFs), sharded store (4 shards)\n",
    );
    let _ = writeln!(
        out,
        "  {:<11} {:>6} {:>9} {:>11} {:>9} {:>9} {:>9}",
        "substrate", "batch", "packets", "pps", "Gbps", "p50 us", "p99 us"
    );
    for r in &records {
        let _ = writeln!(
            out,
            "  {:<11} {:>6} {:>9} {:>11.0} {:>9.3} {:>9.1} {:>9.1}",
            r.substrate, r.batch_size, r.packets, r.pps, r.gbps, r.p50_us, r.p99_us
        );
    }
    out.push_str(
        "  (simulator row: virtual-time throughput/latency; wall_s in the JSON is simulation cost)\n",
    );
    (out, records)
}

/// One arm of the store fast-path sweep: throughput with the write-behind
/// buffer on or off, at a given buffer cap and ring-wait policy.
///
/// The JSON deliberately carries no `"substrate"` key — that key anchors
/// the `--baseline` reader's throughput-row extractor, and these rows are
/// informational (new experiments must never retroactively gate against a
/// baseline that predates them).
#[derive(Debug, Clone)]
pub struct StoreBatchRecord {
    /// Whether the per-instance write-behind buffer was enabled.
    pub write_behind: bool,
    /// Effective buffer cap in ops (equals `ring_batch` when the knob was
    /// left at 0; 0 when write-behind was off).
    pub store_batch: usize,
    /// Ring batch size of the run.
    pub ring_batch: usize,
    /// Ring waiting policy (`"spin"`, `"yield"` or `"park"`).
    pub ring_wait: String,
    /// Packets injected at the root.
    pub packets: u64,
    /// Best-of-three wall-clock throughput.
    pub pps: f64,
    /// Logical operations served by the datastore. Batching changes the
    /// number of round trips and lock acquisitions, not the op count, so
    /// this must match across arms on the same trace.
    pub store_ops: u64,
    /// Mean ops per write-behind drain across all stages (0 when off).
    pub flush_depth_mean: f64,
    /// Invariant-sentinel violations — must be zero in every arm.
    pub invariant_violations: usize,
}

impl StoreBatchRecord {
    /// Render as a JSON object (hand-rolled, like [`RuntimeBenchRecord`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"chain\":\"{BENCH_CHAIN}\",\"experiment\":\"store_batch\",\
             \"write_behind\":{},\"store_batch\":{},\"ring_batch\":{},\
             \"ring_wait\":\"{}\",\"packets\":{},\"pps\":{:.1},\"store_ops\":{},\
             \"flush_depth_mean\":{:.2},\"invariant_violations\":{}}}",
            self.write_behind,
            self.store_batch,
            self.ring_batch,
            self.ring_wait,
            self.packets,
            self.pps,
            self.store_ops,
            self.flush_depth_mean,
            self.invariant_violations
        )
    }
}

fn ring_wait_label(wait: RingWait) -> &'static str {
    match wait {
        RingWait::Spin => "spin",
        RingWait::Yield => "yield",
        RingWait::Park => "park",
    }
}

/// Run one sweep arm: best-of-three at ring batch 64 with the given store
/// fast-path knobs.
fn one_store_batch_arm(
    dag: &LogicalDag,
    trace: &Trace,
    write_behind: bool,
    store_batch: usize,
    ring_wait: RingWait,
) -> StoreBatchRecord {
    const RING_BATCH: usize = 64;
    let cfg = RuntimeConfig::with_batch_size(RING_BATCH)
        .with_write_behind(write_behind)
        .with_store_batch(store_batch)
        .with_ring_wait(ring_wait);
    let report = (0..3)
        .map(|_| run_chain_realtime(dag, ChainConfig::default(), &cfg, trace).expect("valid dag"))
        .max_by(|a, b| a.pps().total_cmp(&b.pps()))
        .expect("at least one run");
    assert_eq!(report.duplicates, 0, "healthy runs deliver exactly once");
    // Depth-weighted mean ops per drain across the chain's stages.
    let (drains, drained_ops) = report
        .telemetry
        .as_ref()
        .map(|t| {
            t.stages.iter().fold((0u64, 0.0f64), |(n, ops), s| {
                (
                    n + s.flush_depth.count,
                    ops + s.flush_depth.count as f64 * s.flush_depth.mean_ns,
                )
            })
        })
        .unwrap_or((0, 0.0));
    StoreBatchRecord {
        write_behind,
        store_batch: if write_behind {
            cfg.effective_store_batch()
        } else {
            0
        },
        ring_batch: RING_BATCH,
        ring_wait: ring_wait_label(ring_wait).to_string(),
        packets: report.injected,
        pps: report.pps(),
        store_ops: report.store_ops,
        flush_depth_mean: if drains > 0 {
            drained_ops / drains as f64
        } else {
            0.0
        },
        invariant_violations: report
            .invariants
            .as_ref()
            .map(|i| i.violations.len())
            .unwrap_or(0),
    }
}

/// The store fast-path sweep behind the `store_batch` records of
/// `paper_eval --json`: write-behind off vs on across buffer caps, plus a
/// `yield` arm at each setting so the ring-wait default stays justified by
/// recorded data. All arms run ring batch 64 (the baseline gate's
/// throughput-lean configuration) on the same trace.
pub fn store_batch_experiment(scale: Scale) -> (String, Vec<StoreBatchRecord>) {
    let trace = bench_trace(scale);
    let dag = bench_chain();
    let arms: [(bool, usize, RingWait); 6] = [
        (false, 0, RingWait::Yield),
        (false, 0, RingWait::Park),
        (true, 8, RingWait::Park),
        (true, 64, RingWait::Park),
        (true, 256, RingWait::Park),
        (true, 64, RingWait::Yield),
    ];
    let records: Vec<StoreBatchRecord> = arms
        .iter()
        .map(|&(wb, sb, rw)| one_store_batch_arm(&dag, &trace, wb, sb, rw))
        .collect();

    let mut out = String::from(
        "Store fast path — write-behind batching × ring-wait policy (ring batch 64)\n",
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>11} {:>6} {:>11} {:>10} {:>11} {:>10}",
        "write-behind", "store batch", "wait", "pps", "store ops", "flush depth", "violations"
    );
    for r in &records {
        let _ = writeln!(
            out,
            "  {:<12} {:>11} {:>6} {:>11.0} {:>10} {:>11.1} {:>10}",
            if r.write_behind { "on" } else { "off" },
            r.store_batch,
            r.ring_wait,
            r.pps,
            r.store_ops,
            r.flush_depth_mean,
            r.invariant_violations
        );
    }
    (out, records)
}

/// One arm of the storage-backend comparison: either a multi-threaded
/// store-op throughput run (`mode == "ops"`) or a recovery-time measurement
/// at a given journal depth (`mode == "recovery"`), on the in-memory or the
/// append-only flat-file engine.
///
/// Like [`StoreBatchRecord`], the JSON carries no `"substrate"` key so the
/// `--baseline` reader never gates these informational rows.
#[derive(Debug, Clone)]
pub struct StoreBackendRecord {
    /// Backend label (`"memory"` or `"append-only"`).
    pub backend: String,
    /// `"ops"` (throughput) or `"recovery"` (restart timing).
    pub mode: String,
    /// Store shards in the run.
    pub shards: usize,
    /// Concurrent client threads (1 for recovery rows).
    pub threads: usize,
    /// Total operations applied.
    pub ops: u64,
    /// Wall-clock seconds: the apply phase for `"ops"` rows, the
    /// `restart_shard` call for `"recovery"` rows.
    pub wall_s: f64,
    /// Journaled store ops per second (0 for recovery rows).
    pub ops_per_sec: f64,
    /// Ops journaled before the restart (0 for ops rows).
    pub history: u64,
    /// Journal entries resident at restart time. On the append-only engine
    /// auto-compaction bounds this by the checkpoint interval regardless of
    /// `history` — the O(delta) claim, in data.
    pub journal_depth: usize,
    /// Entries actually replayed by `restart_shard`.
    pub replayed_ops: usize,
    /// Restart wall time in microseconds (0 for ops rows).
    pub restart_micros: f64,
    /// Correctness failures observed by the arm's own oracle (final-sum
    /// check for ops rows, state-neutrality check for recovery rows).
    pub invariant_violations: usize,
}

impl StoreBackendRecord {
    /// Render as a JSON object (hand-rolled, like [`RuntimeBenchRecord`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"experiment\":\"store_backend\",\"backend\":\"{}\",\"mode\":\"{}\",\
             \"shards\":{},\"threads\":{},\"ops\":{},\"wall_s\":{:.6},\
             \"ops_per_sec\":{:.1},\"history\":{},\"journal_depth\":{},\
             \"replayed_ops\":{},\"restart_micros\":{:.1},\"invariant_violations\":{}}}",
            self.backend,
            self.mode,
            self.shards,
            self.threads,
            self.ops,
            self.wall_s,
            self.ops_per_sec,
            self.history,
            self.journal_depth,
            self.replayed_ops,
            self.restart_micros,
            self.invariant_violations
        )
    }
}

/// Multi-threaded journaled-apply throughput on one backend: 4 shards, 4
/// client threads, each thread incrementing its own key set under unique
/// clocks, with a final-sum oracle.
fn one_store_backend_ops_arm(kind: BackendKind, scale: Scale) -> StoreBackendRecord {
    const SHARDS: usize = 4;
    const THREADS: usize = 4;
    const KEYS_PER_THREAD: u64 = 64;
    let per_thread = (20_000.0 * scale.0).max(500.0) as u64;
    let server = StoreServer::with_backend(SHARDS, kind);
    for s in 0..SHARDS {
        server.set_shard_journaling(s, true);
    }
    let start = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                for i in 0..per_thread {
                    let k = StateKey::shared(
                        VertexId(t as u32),
                        ObjectKey::named(&format!("bk-{t}-{}", i % KEYS_PER_THREAD)),
                    );
                    server
                        .apply(
                            InstanceId(t as u32),
                            &k,
                            &Operation::Increment(1),
                            Some(Clock::with_root(t as u8, i + 1)),
                        )
                        .expect("bench apply");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("bench thread");
    }
    let wall_s = start.elapsed().as_secs_f64();
    // Oracle: each thread's keys must sum to exactly its op count.
    let mut violations = 0usize;
    for t in 0..THREADS {
        let sum: i64 = (0..KEYS_PER_THREAD)
            .map(|i| {
                let k =
                    StateKey::shared(VertexId(t as u32), ObjectKey::named(&format!("bk-{t}-{i}")));
                match server.peek(&k) {
                    Value::Int(v) => v,
                    _ => 0,
                }
            })
            .sum();
        if sum != per_thread as i64 {
            violations += 1;
        }
    }
    let total = per_thread * THREADS as u64;
    StoreBackendRecord {
        backend: kind.label().to_string(),
        mode: "ops".to_string(),
        shards: SHARDS,
        threads: THREADS,
        ops: total,
        wall_s,
        ops_per_sec: total as f64 / wall_s,
        history: 0,
        journal_depth: 0,
        replayed_ops: 0,
        restart_micros: 0.0,
        invariant_violations: violations,
    }
}

/// Recovery time at one journal depth: journal `history` ops into a single
/// shard, then time a crash + recover, checking state neutrality.
fn one_store_backend_recovery_arm(kind: BackendKind, history: u64) -> StoreBackendRecord {
    let server = StoreServer::with_backend(1, kind);
    server.set_shard_journaling(0, true);
    let k = StateKey::shared(VertexId(0), ObjectKey::named("bk-recovery"));
    for c in 1..=history {
        server
            .apply(
                InstanceId(0),
                &k,
                &Operation::Increment(1),
                Some(Clock::with_root(0, c)),
            )
            .expect("bench apply");
    }
    let journal_depth = server.shard_journal_len(0);
    let before = server.peek(&k);
    let start = Instant::now();
    let stats = server.restart_shard(0);
    let restart = start.elapsed();
    let violations = usize::from(server.peek(&k) != before);
    StoreBackendRecord {
        backend: kind.label().to_string(),
        mode: "recovery".to_string(),
        shards: 1,
        threads: 1,
        ops: history,
        wall_s: restart.as_secs_f64(),
        ops_per_sec: 0.0,
        history,
        journal_depth,
        replayed_ops: stats.replayed_ops,
        restart_micros: restart.as_secs_f64() * 1e6,
        invariant_violations: violations,
    }
}

/// The journal depths the recovery half of the backend comparison sweeps.
const STORE_BACKEND_HISTORIES: [u64; 3] = [2_000, 8_000, 32_000];

/// The storage-backend comparison behind the `store_backend` records of
/// `paper_eval --json`: journaled store-op throughput plus recovery time at
/// increasing journal depths, on the in-memory engine and the append-only
/// flat-file engine. The memory rows replay the full history on restart;
/// the append-only rows replay only the post-checkpoint suffix, so their
/// restart cost stays flat as the history grows.
pub fn store_backend_experiment(scale: Scale) -> (String, Vec<StoreBackendRecord>) {
    let mut records = Vec::new();
    for kind in [BackendKind::Memory, BackendKind::AppendOnly] {
        records.push(one_store_backend_ops_arm(kind, scale));
        for (i, base) in STORE_BACKEND_HISTORIES.iter().enumerate() {
            // Keep every depth past the compaction interval (and the depths
            // distinct) even at tiny scales, so the append-only engine
            // always shows a bounded replay suffix against the memory
            // engine's full-history replay.
            let floor = (chc_store::DEFAULT_CHECKPOINT_INTERVAL + 256 * (i + 1)) as u64;
            let history = ((*base as f64 * scale.0) as u64).max(floor);
            records.push(one_store_backend_recovery_arm(kind, history));
        }
    }

    let mut out =
        String::from("Storage backends — journaled throughput and restart cost vs journal depth\n");
    let _ = writeln!(
        out,
        "  {:<12} {:<9} {:>9} {:>12} {:>8} {:>9} {:>12} {:>10}",
        "backend", "mode", "ops", "ops/s", "history", "replayed", "restart us", "violations"
    );
    for r in &records {
        let _ = writeln!(
            out,
            "  {:<12} {:<9} {:>9} {:>12.0} {:>8} {:>9} {:>12.1} {:>10}",
            r.backend,
            r.mode,
            r.ops,
            r.ops_per_sec,
            r.history,
            r.replayed_ops,
            r.restart_micros,
            r.invariant_violations
        );
    }
    out.push_str(
        "  (append-only restarts replay only the post-checkpoint suffix; memory replays all)\n",
    );
    (out, records)
}

/// Measured outcome of the recovery-time experiment: the real-thread
/// engine's answer to the paper's Figure 13 (NF failover) on wall clocks.
#[derive(Debug, Clone)]
pub struct RecoveryRecord {
    /// Chain position of the kill: `"entry"`, `"mid"`, `"tail"` or
    /// `"root"` (the stamping thread itself; a warm standby takes over).
    pub position: String,
    /// Packets in the trace.
    pub packets: u64,
    /// Logical-clock counter at which the instance was killed.
    pub kill_at: u64,
    /// Logged packets replayed to the replacement.
    pub packets_replayed: u64,
    /// Largest root packet log observed (bounded by commit truncation).
    pub log_high_water: usize,
    /// Log entries dropped by commit-frontier truncation.
    pub log_truncated: u64,
    /// Fail-stop detection → replay completion, in microseconds.
    pub recovery_us: f64,
    /// Duplicate clocks suppressed at input queues chain-wide (replay cost).
    pub suppressed_duplicates: u64,
    /// Duplicates observed at the sink — must be zero (R6).
    pub sink_duplicates: u64,
    /// Whether delivered set and shared-state digest matched a healthy run.
    pub matches_healthy: bool,
    /// Invariant-sentinel violations detected during the faulted run — must
    /// be zero (the sentinel runs by default; see
    /// `chc_runtime::RuntimeReport::invariants`).
    pub invariant_violations: usize,
    /// Wall-clock seconds of the faulted run end to end.
    pub wall_s: f64,
    /// The faulted run's control-plane event journal (spawns, the kill, the
    /// failover phases, commit-frontier advances), in record order.
    pub events: Vec<Event>,
}

impl RecoveryRecord {
    /// Render as a JSON object (hand-rolled, like [`RuntimeBenchRecord`]).
    pub fn to_json(&self) -> String {
        let events: Vec<String> = self.events.iter().map(Event::to_json).collect();
        format!(
            "{{\"chain\":\"{BENCH_CHAIN}\",\"position\":\"{}\",\"packets\":{},\"kill_at\":{},\
             \"packets_replayed\":{},\"log_high_water\":{},\"log_truncated\":{},\
             \"recovery_us\":{:.1},\"suppressed_duplicates\":{},\
             \"sink_duplicates\":{},\"matches_healthy\":{},\
             \"invariant_violations\":{},\"wall_s\":{:.6},\
             \"events\":[{}]}}",
            self.position,
            self.packets,
            self.kill_at,
            self.packets_replayed,
            self.log_high_water,
            self.log_truncated,
            self.recovery_us,
            self.suppressed_duplicates,
            self.sink_duplicates,
            self.matches_healthy,
            self.invariant_violations,
            self.wall_s,
            events.join(",")
        )
    }
}

/// The kill positions the recovery-vs-position experiment sweeps, in chain
/// order. `entry`/`mid`/`tail` name the three vertices of [`BENCH_CHAIN`];
/// `root` kills the stamping thread itself (warm-standby takeover).
pub const KILL_POSITIONS: [&str; 4] = ["entry", "mid", "tail", "root"];

/// The seeded fault plan for a named kill position on [`BENCH_CHAIN`], plus
/// the trigger counter it samples. Panics on an unknown position name.
pub fn position_plan(position: &str, seed: u64, trace_len: usize) -> (chc_runtime::FaultPlan, u64) {
    use crate::faultgen::FaultGen;
    let mut gen = FaultGen::new(seed);
    let plan = match position {
        "entry" => gen.kill_plan(chc_store::VertexId(1), 1, trace_len),
        "mid" => gen.kill_plan(chc_store::VertexId(2), 1, trace_len),
        "tail" => gen.kill_plan(chc_store::VertexId(3), 1, trace_len),
        "root" => gen.root_kill_plan(trace_len),
        other => panic!("unknown kill position '{other}' (expected entry|mid|tail|root)"),
    };
    let at = plan
        .root_kill
        .or_else(|| plan.kills.first().map(|k| k.at_counter))
        .expect("plan carries a trigger");
    (plan, at)
}

/// Execute one faulted run against an already-measured healthy run of the
/// same trace and distill it into a [`RecoveryRecord`]. Works for every
/// position: instance kills read the supervisor's recovery record, a root
/// kill reads the warm standby's takeover record.
fn run_one_recovery(
    dag: &LogicalDag,
    trace: &Trace,
    healthy: &chc_runtime::RuntimeReport,
    plan: chc_runtime::FaultPlan,
    position: &str,
    kill_at: u64,
) -> RecoveryRecord {
    let start = Instant::now();
    let faulted = run_chain_realtime(
        dag,
        ChainConfig::default(),
        &RuntimeConfig::with_batch_size(8).with_fault(plan),
        trace,
    )
    .expect("valid dag");
    let wall_s = start.elapsed().as_secs_f64();

    let sorted = |r: &chc_runtime::RuntimeReport| {
        let mut ids = r.delivered_ids.clone();
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    let matches_healthy =
        sorted(healthy) == sorted(&faulted) && healthy.shared_digest() == faulted.shared_digest();
    let fault = faulted.fault.as_ref().expect("fault report present");
    assert!(
        fault.aborts.is_empty(),
        "{position} failover aborted: {:?}",
        fault.aborts
    );
    // Replay volume and detection→completion time come from whichever
    // recovery machinery the position exercises.
    let (packets_replayed, recovery_wall) = match fault.recoveries.first() {
        Some(r) => (r.packets_replayed, r.recovery_wall),
        None => {
            let t = fault
                .root_takeover
                .as_ref()
                .expect("root kill produces a takeover record");
            (t.packets_replayed, t.recovery_wall)
        }
    };
    RecoveryRecord {
        position: position.to_string(),
        packets: faulted.injected,
        kill_at,
        packets_replayed,
        log_high_water: fault.log_high_water,
        log_truncated: fault.log_truncated,
        recovery_us: recovery_wall.as_secs_f64() * 1e6,
        suppressed_duplicates: faulted
            .instances
            .iter()
            .map(|i| i.suppressed_duplicates)
            .sum(),
        sink_duplicates: faulted.duplicates,
        matches_healthy,
        invariant_violations: faulted
            .invariants
            .as_ref()
            .map(|i| i.violations.len())
            .unwrap_or(0),
        wall_s,
        events: faulted
            .telemetry
            .as_ref()
            .map(|t| t.events.clone())
            .unwrap_or_default(),
    }
}

fn healthy_run(dag: &LogicalDag, trace: &Trace) -> chc_runtime::RuntimeReport {
    run_chain_realtime(
        dag,
        ChainConfig::default(),
        &RuntimeConfig::with_batch_size(8),
        trace,
    )
    .expect("valid dag")
}

/// Kill the firewall (entry) instance mid-trace on the real-thread engine,
/// fail over with replay, and measure recovery. The healthy run of the same
/// trace is the correctness yardstick: identical delivered set and shared
/// digest, zero sink duplicates.
pub fn runtime_recovery_experiment(scale: Scale) -> (String, RecoveryRecord) {
    let trace = bench_trace(scale);
    let dag = bench_chain();
    let (plan, kill_at) = position_plan("entry", 97, trace.len());
    let healthy = healthy_run(&dag, &trace);
    let record = run_one_recovery(&dag, &trace, &healthy, plan, "entry", kill_at);

    let mut out = String::from(
        "Real-thread NF failover — firewall killed mid-trace, replacement + replay (R1)\n",
    );
    let _ = writeln!(
        out,
        "  kill at clock {:>7} of {:>7} packets   replayed {:>6}   recovery {:>9.1} us",
        record.kill_at, record.packets, record.packets_replayed, record.recovery_us
    );
    let _ = writeln!(
        out,
        "  log high-water {:>6} (truncated {:>6})   suppressed dups {:>6}   sink dups {}",
        record.log_high_water,
        record.log_truncated,
        record.suppressed_duplicates,
        record.sink_duplicates
    );
    let _ = writeln!(
        out,
        "  delivered set + shared-state digest match healthy run: {}",
        if record.matches_healthy { "yes" } else { "NO" }
    );
    let _ = writeln!(
        out,
        "  event journal: {} control-plane events recorded   sentinel violations: {}",
        record.events.len(),
        record.invariant_violations
    );
    (out, record)
}

/// Recovery time versus kill position: one seeded kill at each chain depth
/// (entry, mid, tail) plus a root kill handled by the warm standby, all on
/// the same trace and all checked against one healthy run. This is the
/// wall-clock analogue of the paper's recovery-time evaluation, extended to
/// every position the engine now covers; mid/tail replays come from the
/// killed vertex's *upstream* egress log, so the rows also show how the
/// replay volume shrinks with chain depth under commit truncation.
pub fn runtime_recovery_by_position_experiment(scale: Scale) -> (String, Vec<RecoveryRecord>) {
    let trace = bench_trace(scale);
    let dag = bench_chain();
    let healthy = healthy_run(&dag, &trace);
    let records: Vec<RecoveryRecord> = KILL_POSITIONS
        .iter()
        .map(|position| {
            let (plan, kill_at) = position_plan(position, 97, trace.len());
            run_one_recovery(&dag, &trace, &healthy, plan, position, kill_at)
        })
        .collect();

    let mut out = String::from(
        "Recovery time vs kill position — one seeded kill per chain depth, same trace\n",
    );
    let _ = writeln!(
        out,
        "  {:<6} {:>8} {:>9} {:>12} {:>10} {:>9} {:>8}",
        "kill", "at", "replayed", "recovery us", "supp dups", "sink dup", "matches"
    );
    for r in &records {
        let _ = writeln!(
            out,
            "  {:<6} {:>8} {:>9} {:>12.1} {:>10} {:>9} {:>8}",
            r.position,
            r.kill_at,
            r.packets_replayed,
            r.recovery_us,
            r.suppressed_duplicates,
            r.sink_duplicates,
            if r.matches_healthy { "yes" } else { "NO" }
        );
    }
    (out, records)
}

/// Measured outcome of the telemetry experiment: one instrumented run's
/// per-stage latency decomposition, gauge time series and event journal,
/// plus the paired enabled/disabled throughput that prices the
/// instrumentation itself.
#[derive(Debug, Clone)]
pub struct TelemetryBenchRecord {
    /// Ring batch size of the instrumented run.
    pub batch_size: usize,
    /// Gauge sampling cadence in milliseconds.
    pub sample_ms: u64,
    /// Mean root→sink latency of the instrumented run, from the end-to-end
    /// histogram (the yardstick the decomposition must reconstruct).
    pub e2e_mean_ns: f64,
    /// Median root→sink latency of the instrumented run.
    pub e2e_p50_ns: u64,
    /// The run's telemetry section: per-stage decomposition, gauge series,
    /// journal events.
    pub report: TelemetryReport,
    /// Best-of-five throughput with the full observability layer on:
    /// standard telemetry plus 1%-flow-sampled causal tracing plus the
    /// invariant sentinel.
    pub pps_enabled: f64,
    /// Best-of-five throughput with tracing and the sentinel off but the
    /// same standard telemetry surface (stage spans, journal, gauges) —
    /// the arm the 5% budget diffs against.
    pub pps_disabled: f64,
    /// Invariant-sentinel violations detected in the instrumented run —
    /// must be zero.
    pub invariant_violations: usize,
}

impl TelemetryBenchRecord {
    /// The spans' reconstruction of the mean end-to-end latency.
    pub fn decomposed_mean_ns(&self) -> f64 {
        self.report.decomposed_mean_ns()
    }

    /// Throughput cost of the tracing + sentinel layer in percent
    /// (positive = the layer costs throughput; small negatives are
    /// run-to-run noise).
    pub fn overhead_pct(&self) -> f64 {
        if self.pps_disabled > 0.0 {
            (self.pps_disabled - self.pps_enabled) / self.pps_disabled * 100.0
        } else {
            0.0
        }
    }

    /// Render as a JSON object (hand-rolled, like [`RuntimeBenchRecord`]).
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .report
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"vertex\":{},\"queue\":{},\"service\":{},\"store\":{},\
                     \"flush_depth\":{}}}",
                    s.vertex.0,
                    summary_json(&s.queue),
                    summary_json(&s.service),
                    summary_json(&s.store),
                    summary_json(&s.flush_depth)
                )
            })
            .collect();
        let gauges: Vec<String> = self
            .report
            .series
            .series
            .iter()
            .map(|g| {
                let pts: Vec<String> = g
                    .points
                    .iter()
                    .map(|p| format!("[{},{:.1}]", p.t_ns, p.value))
                    .collect();
                format!("{{\"name\":\"{}\",\"points\":[{}]}}", g.name, pts.join(","))
            })
            .collect();
        let events: Vec<String> = self.report.events.iter().map(Event::to_json).collect();
        format!(
            "{{\"chain\":\"{BENCH_CHAIN}\",\"batch_size\":{},\"sample_ms\":{},\
             \"e2e_mean_ns\":{:.1},\"e2e_p50_ns\":{},\"decomposed_mean_ns\":{:.1},\
             \"sink_wait\":{},\"stages\":[{}],\"gauges\":[{}],\"events\":[{}],\
             \"trace_spans\":{},\"trace_dropped\":{},\"invariant_violations\":{},\
             \"overhead\":{{\"pps_enabled\":{:.1},\"pps_disabled\":{:.1},\"overhead_pct\":{:.2}}}}}",
            self.batch_size,
            self.sample_ms,
            self.e2e_mean_ns,
            self.e2e_p50_ns,
            self.decomposed_mean_ns(),
            summary_json(&self.report.sink_wait),
            stages.join(","),
            gauges.join(","),
            events.join(","),
            self.report.trace_spans.len(),
            self.report.trace_dropped,
            self.invariant_violations,
            self.pps_enabled,
            self.pps_disabled,
            self.overhead_pct()
        )
    }
}

/// Render a [`HistSummary`] as a JSON object.
fn summary_json(s: &HistSummary) -> String {
    format!(
        "{{\"count\":{},\"mean_ns\":{:.1},\"min_ns\":{},\"p50_ns\":{},\
         \"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
        s.count, s.mean_ns, s.min_ns, s.p50_ns, s.p95_ns, s.p99_ns, s.max_ns
    )
}

/// Per-million rate the telemetry experiment samples flows for causal
/// tracing: 1% — the always-on diagnostic rate whose cost the overhead
/// record must price inside the 5% budget.
pub const TELEMETRY_BENCH_TRACE_PPM: u32 = 10_000;

/// Run the chain fully instrumented (spans + journal + gauge sampling at
/// `sample`, causal tracing at 1% of flows, invariant sentinel on), then
/// price the instrumentation with paired best-of-two runs — telemetry on
/// versus [`TelemetryConfig::disabled`] — on the same trace.
///
/// The small (latency-lean) batch size is used so the decomposition is
/// dominated by real per-stage work rather than batching delay.
pub fn runtime_telemetry_experiment(
    scale: Scale,
    sample: Duration,
) -> (String, TelemetryBenchRecord) {
    let trace = bench_trace(scale);
    let dag = bench_chain();
    let batch = DEFAULT_BATCH_SIZES[0];
    let instrumented_cfg = RuntimeConfig::with_batch_size(batch)
        .with_sample_interval(sample)
        .with_trace_sample_ppm(TELEMETRY_BENCH_TRACE_PPM);
    let report = run_chain_realtime(&dag, ChainConfig::default(), &instrumented_cfg, &trace)
        .expect("valid dag");
    let telemetry = report.telemetry.clone().expect("telemetry enabled");

    // Overhead: identical runs where the switches under test are the only
    // difference. The budget prices *this observability layer* — 1%
    // flow-sampled causal tracing plus the invariant sentinel — so the
    // comparison arm keeps the standard telemetry surface (stage spans,
    // journal, gauges at the same cadence) and turns off only tracing and
    // the sentinel; diffing against a dark engine would charge this gate
    // for the long-standing stage/gauge machinery instead. Run-to-run
    // noise on a loaded host easily exceeds the effect being measured, so
    // the pairs are *interleaved* (drift hits both configs equally rather
    // than whichever happened to run last) and the best of five is kept
    // per config — the ratio of per-config ceilings converges on the true
    // cost where a single pair mostly measures scheduler luck (this number
    // is gated at 5% by `--baseline`, so it must be stable). The
    // instrumented run above is the warm-up.
    let disabled_cfg = RuntimeConfig::with_batch_size(batch)
        .with_telemetry(TelemetryConfig {
            trace_sample_ppm: 0,
            sentinel: false,
            ..TelemetryConfig::default()
        })
        .with_sample_interval(sample);
    let one_pps = |cfg: &RuntimeConfig| -> f64 {
        run_chain_realtime(&dag, ChainConfig::default(), cfg, &trace)
            .expect("valid dag")
            .pps()
    };
    let mut pps_enabled = 0.0f64;
    let mut pps_disabled = 0.0f64;
    for _ in 0..5 {
        pps_disabled = pps_disabled.max(one_pps(&disabled_cfg));
        pps_enabled = pps_enabled.max(one_pps(&instrumented_cfg));
    }

    let record = TelemetryBenchRecord {
        batch_size: batch,
        sample_ms: sample.as_millis() as u64,
        e2e_mean_ns: report.latency.mean(),
        e2e_p50_ns: report.latency.percentile(50.0),
        report: telemetry,
        pps_enabled,
        pps_disabled,
        invariant_violations: report
            .invariants
            .as_ref()
            .map(|i| i.violations.len())
            .unwrap_or(0),
    };

    let mut out = String::from(
        "Telemetry — per-stage latency decomposition, gauges, event journal (batch 8)\n",
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>10} {:>11} {:>9} {:>9}",
        "stage", "queue us", "service us", "store us", "total us"
    );
    for s in &record.report.stages {
        let _ = writeln!(
            out,
            "  vertex {:<3} {:>10.2} {:>11.2} {:>9.2} {:>9.2}",
            s.vertex.0,
            s.queue.mean_ns / 1e3,
            s.service.mean_ns / 1e3,
            s.store.mean_ns / 1e3,
            s.mean_total_ns() / 1e3
        );
    }
    let _ = writeln!(
        out,
        "  sink wait  {:>10.2} us",
        record.report.sink_wait.mean_ns / 1e3
    );
    let rel = if record.e2e_mean_ns > 0.0 {
        (record.decomposed_mean_ns() - record.e2e_mean_ns) / record.e2e_mean_ns * 100.0
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "  e2e mean {:.2} us, decomposed sum {:.2} us ({rel:+.1}%)",
        record.e2e_mean_ns / 1e3,
        record.decomposed_mean_ns() / 1e3
    );
    let _ = writeln!(
        out,
        "  gauge series: {}   journal events: {}   trace spans (1% flows): {}   \
         sentinel violations: {}",
        record.report.series.series.len(),
        record.report.events.len(),
        record.report.trace_spans.len(),
        record.invariant_violations
    );
    let _ = writeln!(
        out,
        "  overhead: {:.0} pps with tracing+sentinel vs {:.0} pps telemetry-only ({:+.2}%)",
        record.pps_enabled,
        record.pps_disabled,
        record.overhead_pct()
    );
    (out, record)
}

/// Measured outcome of the traced-failover experiment: the entry instance
/// is killed mid-trace while *every* flow is trace-sampled, so the exported
/// Chrome trace shows the killed vertex's packets reappearing as replay
/// spans on the supervisor and replacement lanes.
#[derive(Debug, Clone)]
pub struct TraceRunRecord {
    /// Packets in the trace.
    pub packets: u64,
    /// Flow-sampling rate the run traced at (ppm; this experiment uses
    /// full sampling).
    pub sample_ppm: u32,
    /// Span events collected.
    pub spans: usize,
    /// Spans dropped at the collector's capacity bound (0 at bench scales).
    pub dropped: u64,
    /// `replay_inject` spans on the supervisor lane — log entries
    /// re-injected for the replacement.
    pub replay_inject_spans: usize,
    /// `service` spans with `replay:1` — replayed packets actually
    /// processed by the replacement (rather than suppressed en route).
    pub replay_service_spans: usize,
    /// Shape of the exported document, as counted by
    /// [`validate_chrome_trace`] (the export is validated before being
    /// returned).
    pub shape: TraceShape,
    /// Invariant-sentinel violations during the traced faulted run — must
    /// be zero.
    pub invariant_violations: usize,
    /// The Perfetto-loadable Chrome trace-event JSON document.
    pub trace_json: String,
}

/// Kill the entry instance mid-trace with causal tracing at full sampling —
/// see [`runtime_trace_experiment_at`] for the position-parameterized form
/// behind `paper_eval --trace-kill`.
pub fn runtime_trace_experiment(scale: Scale) -> (String, TraceRunRecord) {
    runtime_trace_experiment_at(scale, "entry")
}

/// Kill at a named chain position (`entry`/`mid`/`tail`/`root`) mid-trace
/// with causal tracing at full sampling, export the collected spans as
/// Chrome trace-event JSON, and validate the document's shape (balanced
/// `B`/`E` nesting, per-lane timestamp monotonicity). This is the run
/// behind `paper_eval --trace-out`.
pub fn runtime_trace_experiment_at(scale: Scale, position: &str) -> (String, TraceRunRecord) {
    let trace = bench_trace(scale);
    let dag = bench_chain();
    let (plan, _) = position_plan(position, 97, trace.len());
    let cfg = RuntimeConfig::with_batch_size(8)
        .with_fault(plan)
        .with_trace_sample_ppm(TRACE_PPM_FULL);
    let report = run_chain_realtime(&dag, ChainConfig::default(), &cfg, &trace).expect("valid dag");

    let telemetry = report.telemetry.as_ref().expect("telemetry enabled");
    let spans = &telemetry.trace_spans;
    let trace_json = chrome_trace_json(spans);
    let shape = match validate_chrome_trace(&trace_json) {
        Ok(shape) => shape,
        Err(e) => panic!("traced failover exported an invalid Chrome trace: {e}"),
    };

    let replay_inject_spans = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::ReplayInject))
        .count();
    let replay_service_spans = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Service { replay: true, .. }))
        .count();
    let record = TraceRunRecord {
        packets: report.injected,
        sample_ppm: TRACE_PPM_FULL,
        spans: spans.len(),
        dropped: telemetry.trace_dropped,
        replay_inject_spans,
        replay_service_spans,
        shape,
        invariant_violations: report
            .invariants
            .as_ref()
            .map(|i| i.violations.len())
            .unwrap_or(0),
        trace_json,
    };

    let mut out =
        format!("Causal trace — {position} kill under full flow sampling, Chrome trace export\n");
    let _ = writeln!(
        out,
        "  {} packets traced: {} spans on {} lanes ({} dropped)",
        record.packets, record.spans, record.shape.lanes, record.dropped
    );
    let _ = writeln!(
        out,
        "  replay visible in the trace: {} replay_inject spans (supervisor lane), \
         {} replayed service spans",
        record.replay_inject_spans, record.replay_service_spans
    );
    let _ = writeln!(
        out,
        "  export shape: {} events, {} B / {} E (validated)   sentinel violations: {}",
        record.shape.events, record.shape.begins, record.shape.ends, record.invariant_violations
    );
    (out, record)
}

/// Serialize bench records (plus run metadata and, when measured, the
/// recovery experiment) into the `BENCH_*.json` document `paper_eval
/// --json` writes.
pub fn records_to_json(
    scale: Scale,
    records: &[RuntimeBenchRecord],
    recovery: Option<&RecoveryRecord>,
    by_position: Option<&[RecoveryRecord]>,
    telemetry: Option<&TelemetryBenchRecord>,
    store_batch: Option<&[StoreBatchRecord]>,
    store_backend: Option<&[StoreBackendRecord]>,
) -> String {
    let rows: Vec<String> = records
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let recovery_field = match recovery {
        Some(r) => format!(",\n  \"recovery\": {}", r.to_json()),
        None => String::new(),
    };
    // One record per line so the line-oriented baseline reader can recover
    // each position's row independently.
    let by_position_field = match by_position {
        Some(rs) if !rs.is_empty() => {
            let rows: Vec<String> = rs.iter().map(|r| format!("    {}", r.to_json())).collect();
            format!(
                ",\n  \"recovery_by_position\": [\n{}\n  ]",
                rows.join(",\n")
            )
        }
        _ => String::new(),
    };
    let telemetry_field = match telemetry {
        Some(t) => format!(",\n  \"telemetry\": {}", t.to_json()),
        None => String::new(),
    };
    // One sweep arm per line; these rows carry no "substrate" field so the
    // baseline reader never mistakes them for gated throughput rows.
    let store_batch_field = match store_batch {
        Some(rs) if !rs.is_empty() => {
            let rows: Vec<String> = rs.iter().map(|r| format!("    {}", r.to_json())).collect();
            format!(",\n  \"store_batch\": [\n{}\n  ]", rows.join(",\n"))
        }
        _ => String::new(),
    };
    // Same no-"substrate" convention as the store_batch rows.
    let store_backend_field = match store_backend {
        Some(rs) if !rs.is_empty() => {
            let rows: Vec<String> = rs.iter().map(|r| format!("    {}", r.to_json())).collect();
            format!(",\n  \"store_backend\": [\n{}\n  ]", rows.join(",\n"))
        }
        _ => String::new(),
    };
    format!(
        "{{\n  \"generated_by\": \"paper_eval\",\n  \"scale\": {},\n  \"runtime_chain\": [\n{}\n  ]{}{}{}{}{}\n}}\n",
        scale.0,
        rows.join(",\n"),
        recovery_field,
        by_position_field,
        telemetry_field,
        store_batch_field,
        store_backend_field
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realtime_bench_produces_sane_records() {
        let records = bench_realtime(Scale(0.05), &[4, 32]);
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.chain, BENCH_CHAIN);
            assert_eq!(r.substrate, "realtime");
            assert!(r.packets > 0 && r.delivered > 0);
            assert!(r.delivered <= r.packets);
            assert!(r.pps > 0.0 && r.wall_s > 0.0);
            assert!(r.p50_us <= r.p99_us);
            assert!(r.store_ops > 0);
        }
    }

    #[test]
    fn simulator_bench_and_json_shape() {
        let sim = bench_simulator(Scale(0.05));
        assert_eq!(sim.substrate, "simulator");
        assert!(sim.delivered > 0 && sim.pps > 0.0);

        let json = records_to_json(Scale(0.05), &[sim], None, None, None, None, None);
        assert!(json.contains("\"runtime_chain\""));
        assert!(json.contains("\"substrate\":\"simulator\""));
        assert!(json.contains("\"generated_by\": \"paper_eval\""));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the workspace).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn store_batch_sweep_records_every_arm_cleanly() {
        let (text, records) = store_batch_experiment(Scale(0.02));
        assert!(text.contains("write-behind"));
        assert_eq!(records.len(), 6);
        assert!(records.iter().any(|r| !r.write_behind));
        assert!(records.iter().any(|r| r.write_behind));
        for r in &records {
            assert!(r.packets > 0 && r.pps > 0.0 && r.store_ops > 0);
            assert_eq!(r.invariant_violations, 0, "sentinel must stay clean");
            if r.write_behind {
                assert!(r.store_batch > 0, "effective cap recorded");
            } else {
                assert_eq!(r.store_batch, 0);
                assert_eq!(r.flush_depth_mean, 0.0, "no drains with the buffer off");
            }
        }
        // Batching changes round trips, not logical work: every arm serves
        // the same ops on the same trace, and the write-behind arms must
        // actually drain through the batched path.
        let off = records.iter().find(|r| !r.write_behind).unwrap();
        let on = records.iter().find(|r| r.write_behind).unwrap();
        assert_eq!(
            on.store_ops, off.store_ops,
            "write-behind must not change the logical op count"
        );
        assert!(
            records
                .iter()
                .any(|r| r.write_behind && r.flush_depth_mean > 0.0),
            "no write-behind arm recorded a batched drain"
        );

        let json = records_to_json(Scale(0.02), &[], None, None, None, Some(&records), None);
        assert!(json.contains("\"store_batch\""));
        assert!(json.contains("\"experiment\":\"store_batch\""));
        // These rows must never look like baseline-gated throughput rows.
        for line in json.lines().filter(|l| l.contains("\"store_batch\":")) {
            assert!(!line.contains("\"substrate\""));
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn store_backend_comparison_records_both_engines_cleanly() {
        let (text, records) = store_backend_experiment(Scale(0.02));
        assert!(text.contains("Storage backends"));
        // 1 throughput row + 3 recovery depths, per backend.
        assert_eq!(records.len(), 8);
        for backend in ["memory", "append_only"] {
            assert_eq!(
                records
                    .iter()
                    .filter(|r| r.backend == backend && r.mode == "ops")
                    .count(),
                1
            );
            assert_eq!(
                records
                    .iter()
                    .filter(|r| r.backend == backend && r.mode == "recovery")
                    .count(),
                3
            );
        }
        for r in &records {
            assert_eq!(r.invariant_violations, 0, "oracle must stay clean");
            match r.mode.as_str() {
                "ops" => assert!(r.ops > 0 && r.ops_per_sec > 0.0 && r.wall_s > 0.0),
                "recovery" => {
                    assert!(r.history > 0 && r.restart_micros > 0.0);
                    // The memory engine replays the whole history; the
                    // append-only engine auto-compacts, so its replayed
                    // suffix is bounded by the checkpoint interval.
                    if r.backend == "memory" {
                        assert_eq!(r.replayed_ops as u64, r.history);
                    } else {
                        assert!(
                            r.replayed_ops < chc_store::DEFAULT_CHECKPOINT_INTERVAL,
                            "append-only restart must be O(ops since checkpoint)"
                        );
                        assert!((r.replayed_ops as u64) < r.history);
                    }
                }
                other => panic!("unexpected mode {other}"),
            }
        }

        let json = records_to_json(Scale(0.02), &[], None, None, None, None, Some(&records));
        assert!(json.contains("\"store_backend\""));
        assert!(json.contains("\"experiment\":\"store_backend\""));
        assert!(json.contains("\"backend\":\"memory\""));
        assert!(json.contains("\"backend\":\"append_only\""));
        // Informational rows: the baseline gate keys on "substrate".
        for line in json.lines().filter(|l| l.contains("\"store_backend\":")) {
            assert!(!line.contains("\"substrate\""));
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn scale_for_packets_inverts_the_trace_sizer() {
        // scale 1.0 ~ 48k packets, so asking for 48k must round-trip.
        assert!((scale_for_packets(48_000).0 - 1.0).abs() < 1e-9);
        assert!((scale_for_packets(4_800).0 - 0.1).abs() < 1e-9);
    }

    #[test]
    fn recovery_experiment_measures_a_correct_failover() {
        let (text, record) = runtime_recovery_experiment(Scale(0.05));
        assert!(text.contains("failover"));
        assert!(record.matches_healthy, "failover diverged from healthy run");
        assert_eq!(record.sink_duplicates, 0);
        assert_eq!(record.invariant_violations, 0, "sentinel must stay clean");
        assert!(record.packets_replayed > 0);
        assert!(record.recovery_us > 0.0);

        assert!(
            !record.events.is_empty(),
            "faulted run journals control-plane events"
        );
        for phase in [
            "instance_killed",
            "failover_begin",
            "replacement_spawn",
            "replay_complete",
            "failover_end",
        ] {
            assert!(
                record.events.iter().any(|e| e.kind.name() == phase),
                "missing {phase} event"
            );
        }

        let json = records_to_json(Scale(0.05), &[], Some(&record), None, None, None, None);
        assert!(json.contains("\"recovery\""));
        assert!(json.contains("\"packets_replayed\""));
        assert!(json.contains("\"failover_begin\""));
        assert!(json.contains("\"invariant_violations\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn recovery_by_position_covers_every_position_correctly() {
        let (text, records) = runtime_recovery_by_position_experiment(Scale(0.05));
        assert!(text.contains("kill position"));
        assert_eq!(records.len(), KILL_POSITIONS.len());
        for (r, expect) in records.iter().zip(KILL_POSITIONS) {
            assert_eq!(r.position, expect);
            assert!(r.matches_healthy, "{expect} kill diverged from healthy");
            assert_eq!(r.sink_duplicates, 0, "{expect} kill delivered duplicates");
            assert_eq!(r.invariant_violations, 0, "{expect} kill tripped sentinel");
            assert!(r.kill_at > 0 && r.kill_at <= r.packets);
            assert!(r.recovery_us > 0.0);
        }
        // Instance kills replay logged packets; the root takeover may
        // legitimately replay zero (everything before the kill confirmed).
        for r in &records[..3] {
            assert!(
                r.packets_replayed > 0,
                "{} kill replayed nothing",
                r.position
            );
        }

        let json = records_to_json(Scale(0.05), &[], None, Some(&records), None, None, None);
        assert!(json.contains("\"recovery_by_position\""));
        for p in KILL_POSITIONS {
            assert!(json.contains(&format!("\"position\":\"{p}\"")));
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn telemetry_experiment_decomposes_latency() {
        let (text, record) = runtime_telemetry_experiment(Scale(0.05), Duration::from_millis(2));
        assert!(text.contains("decomposition"));
        assert_eq!(record.report.stages.len(), 3, "one stage per chain vertex");
        for s in &record.report.stages {
            assert!(s.service.count > 0, "vertex {} saw packets", s.vertex.0);
        }
        assert!(record.report.sink_wait.count > 0);

        // The hop stamps telescope, so the component sum must track the
        // end-to-end mean (drops at the firewall and clock-read jitter are
        // the only divergence sources).
        let e2e = record.e2e_mean_ns;
        let dec = record.decomposed_mean_ns();
        assert!(e2e > 0.0 && dec > 0.0);
        assert!(
            (dec - e2e).abs() / e2e < 0.25,
            "decomposed {dec:.0} ns vs e2e {e2e:.0} ns"
        );

        // Gauge series exist and each carries at least first + final sample.
        assert!(!record.report.series.series.is_empty());
        for g in &record.report.series.series {
            assert!(g.points.len() >= 2, "series {} too short", g.name);
        }

        // The instrumented run also carries 1% causal tracing and the
        // sentinel; neither may report problems.
        assert_eq!(record.invariant_violations, 0, "sentinel must stay clean");
        assert_eq!(record.report.trace_dropped, 0);

        let json = records_to_json(Scale(0.05), &[], None, None, Some(&record), None, None);
        assert!(json.contains("\"telemetry\""));
        assert!(json.contains("\"stages\""));
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"overhead\""));
        assert!(json.contains("\"trace_spans\""));
        assert!(json.contains("\"invariant_violations\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn trace_experiment_exports_a_valid_trace_with_replay_spans() {
        let (text, record) = runtime_trace_experiment(Scale(0.05));
        assert!(text.contains("Chrome trace export"));
        assert!(record.spans > 0, "full sampling must collect spans");
        assert_eq!(record.dropped, 0);
        assert_eq!(record.sample_ppm, TRACE_PPM_FULL);
        // The exporter was validated inside the experiment; re-check the
        // counted shape is internally consistent.
        assert_eq!(record.shape.begins, record.shape.ends);
        assert!(record.shape.lanes >= 3, "root, instances and sink lanes");
        // The killed entry vertex's logged packets must reappear as replay
        // spans: supervisor re-injections, and replayed service at the
        // replacement.
        assert!(
            record.replay_inject_spans > 0,
            "replay not visible in trace"
        );
        assert!(record.replay_service_spans > 0);
        assert_eq!(record.invariant_violations, 0, "sentinel must stay clean");
        assert!(record.trace_json.contains("\"ph\":\"M\""));
        assert!(record.trace_json.contains("replay_inject"));
    }
}
