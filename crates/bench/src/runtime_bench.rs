//! Real-thread chain benchmarks: packets/s and latency percentiles for an
//! NF chain executed on both substrates (the `chc_sim` discrete-event
//! simulator and the `chc_runtime` thread engine), at several batch sizes.
//!
//! The runtime rows measure *wall-clock* throughput the way §7 of the paper
//! measures its testbed; the simulator row reports virtual-time goodput plus
//! the wall time it took to simulate, which contextualizes how much faster
//! than real time the simulation runs at small scales.

use crate::Scale;
use chc_core::{ChainConfig, ChainController, LogicalDag, SinkActor, VertexSpec};
use chc_nf::{Firewall, LoadBalancer, Nat};
use chc_packet::{Trace, TraceConfig, TraceGenerator};
use chc_runtime::{run_chain_realtime, RuntimeConfig};
use chc_sim::Histogram;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// The chain every record in this module measures.
pub const BENCH_CHAIN: &str = "firewall-nat-lb";

/// One measured configuration, serializable to JSON by [`RuntimeBenchRecord::to_json`].
#[derive(Debug, Clone)]
pub struct RuntimeBenchRecord {
    /// Chain label (see [`BENCH_CHAIN`]).
    pub chain: String,
    /// `"realtime"` or `"simulator"`.
    pub substrate: String,
    /// Ring batch size (0 for the simulator, which has no rings).
    pub batch_size: usize,
    /// Packets injected at the root.
    pub packets: u64,
    /// Distinct packets delivered to the sink.
    pub delivered: u64,
    /// Wall-clock seconds the run took.
    pub wall_s: f64,
    /// End-to-end throughput in packets/s (wall clock for the runtime,
    /// virtual time for the simulator).
    pub pps: f64,
    /// End-to-end goodput in Gbit/s (same timebase as `pps`).
    pub gbps: f64,
    /// Median root→sink per-packet latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile root→sink per-packet latency in microseconds.
    pub p99_us: f64,
    /// Operations served by the datastore during the run (0 where the
    /// substrate does not expose the counter).
    pub store_ops: u64,
}

impl RuntimeBenchRecord {
    /// Render as a JSON object (hand-rolled: the build environment has no
    /// serde_json; every field is numeric or a known-safe ASCII label).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"chain\":\"{}\",\"substrate\":\"{}\",\"batch_size\":{},\"packets\":{},\
             \"delivered\":{},\"wall_s\":{:.6},\"pps\":{:.1},\"gbps\":{:.4},\
             \"p50_us\":{:.2},\"p99_us\":{:.2},\"store_ops\":{}}}",
            self.chain,
            self.substrate,
            self.batch_size,
            self.packets,
            self.delivered,
            self.wall_s,
            self.pps,
            self.gbps,
            self.p50_us,
            self.p99_us,
            self.store_ops
        )
    }
}

/// The 3-NF chain of the paper's running example: firewall → NAT → LB.
pub fn bench_chain() -> LogicalDag {
    LogicalDag::linear(vec![
        VertexSpec::new(
            1,
            "firewall",
            Rc::new(|| Box::new(Firewall::with_default_policy())),
        ),
        VertexSpec::new(2, "nat", Rc::new(|| Box::new(Nat::default()))),
        VertexSpec::new(
            3,
            "lb",
            Rc::new(|| Box::new(LoadBalancer::with_default_backends())),
        ),
    ])
}

fn bench_trace(scale: Scale) -> Trace {
    TraceGenerator::new(TraceConfig {
        seed: 97,
        connections: ((2_000.0 * scale.0).max(100.0)) as usize,
        mean_packets_per_connection: 24,
        ..TraceConfig::default()
    })
    .generate()
}

/// Measure the real-thread engine at each batch size.
pub fn bench_realtime(scale: Scale, batch_sizes: &[usize]) -> Vec<RuntimeBenchRecord> {
    let trace = bench_trace(scale);
    let dag = bench_chain();
    batch_sizes
        .iter()
        .map(|&batch| {
            let rt_cfg = RuntimeConfig::with_batch_size(batch);
            let start = Instant::now();
            let mut report = run_chain_realtime(&dag, ChainConfig::default(), &rt_cfg, &trace)
                .expect("valid dag");
            let wall_s = start.elapsed().as_secs_f64();
            assert_eq!(report.duplicates, 0, "healthy runs deliver exactly once");
            let summary = report.latency_summary();
            let p99 = report.latency.percentile(99.0);
            RuntimeBenchRecord {
                chain: BENCH_CHAIN.to_string(),
                substrate: "realtime".to_string(),
                batch_size: batch,
                packets: report.injected,
                delivered: report.delivered as u64,
                wall_s,
                pps: report.pps(),
                gbps: report.gbps(),
                p50_us: summary.p50.as_micros_f64(),
                p99_us: p99.as_micros_f64(),
                store_ops: report.store_ops,
            }
        })
        .collect()
}

/// Measure the same chain on the discrete-event simulator (virtual-time
/// throughput; wall time is the cost of simulating).
pub fn bench_simulator(scale: Scale) -> RuntimeBenchRecord {
    let trace = bench_trace(scale);
    let mut chain = ChainController::new(bench_chain(), ChainConfig::default(), 97).unwrap();
    chain.inject_trace(&trace);
    let start = Instant::now();
    chain.run();
    let wall_s = start.elapsed().as_secs_f64();
    let metrics = chain.metrics();

    // Root→sink latency in virtual time: sink receive time minus the
    // packet's arrival at the chain entry (clock counter n is the n-th
    // injected packet).
    let mut latency = Histogram::new();
    let sink = chain
        .sim
        .actor::<SinkActor>(chain.handles().sink)
        .expect("sink");
    for (at, clock, _) in &sink.received {
        let idx = (clock.counter() - 1) as usize;
        if let Some(pkt) = trace.packets.get(idx) {
            latency.record_nanos(at.as_nanos().saturating_sub(pkt.arrival_ns));
        }
    }
    // Virtual-time pps across the delivery span.
    let span_s = sink
        .received
        .iter()
        .map(|(t, _, _)| t.as_nanos())
        .max()
        .zip(sink.received.iter().map(|(t, _, _)| t.as_nanos()).min())
        .map(|(hi, lo)| (hi.saturating_sub(lo)) as f64 / 1e9)
        .unwrap_or(0.0);
    let pps = if span_s > 0.0 {
        metrics.sink_delivered as f64 / span_s
    } else {
        0.0
    };

    RuntimeBenchRecord {
        chain: BENCH_CHAIN.to_string(),
        substrate: "simulator".to_string(),
        batch_size: 0,
        packets: metrics.root.packets_in,
        delivered: metrics.sink_delivered as u64,
        wall_s,
        pps,
        gbps: metrics.sink_gbps,
        p50_us: latency.median().as_micros_f64(),
        p99_us: latency.percentile(99.0).as_micros_f64(),
        store_ops: 0,
    }
}

/// The default batch sizes the evaluation sweeps: one small (latency-lean)
/// and one large (throughput-lean).
pub const DEFAULT_BATCH_SIZES: [usize; 2] = [8, 64];

/// Run the full substrate comparison, returning the human-readable section
/// and the machine-readable records.
pub fn runtime_chain_experiment(scale: Scale) -> (String, Vec<RuntimeBenchRecord>) {
    let mut records = bench_realtime(scale, &DEFAULT_BATCH_SIZES);
    records.push(bench_simulator(scale));

    let mut out = String::from(
        "Real-thread chain engine — firewall → NAT → LB (3 NFs), sharded store (4 shards)\n",
    );
    let _ = writeln!(
        out,
        "  {:<11} {:>6} {:>9} {:>11} {:>9} {:>9} {:>9}",
        "substrate", "batch", "packets", "pps", "Gbps", "p50 us", "p99 us"
    );
    for r in &records {
        let _ = writeln!(
            out,
            "  {:<11} {:>6} {:>9} {:>11.0} {:>9.3} {:>9.1} {:>9.1}",
            r.substrate, r.batch_size, r.packets, r.pps, r.gbps, r.p50_us, r.p99_us
        );
    }
    out.push_str(
        "  (simulator row: virtual-time throughput/latency; wall_s in the JSON is simulation cost)\n",
    );
    (out, records)
}

/// Measured outcome of the recovery-time experiment: the real-thread
/// engine's answer to the paper's Figure 13 (NF failover) on wall clocks.
#[derive(Debug, Clone)]
pub struct RecoveryRecord {
    /// Packets in the trace.
    pub packets: u64,
    /// Logical-clock counter at which the entry instance was killed.
    pub kill_at: u64,
    /// Logged packets replayed to the replacement.
    pub packets_replayed: u64,
    /// Largest root packet log observed (bounded by commit truncation).
    pub log_high_water: usize,
    /// Log entries dropped by commit-frontier truncation.
    pub log_truncated: u64,
    /// Fail-stop detection → replay completion, in microseconds.
    pub recovery_us: f64,
    /// Duplicate clocks suppressed at input queues chain-wide (replay cost).
    pub suppressed_duplicates: u64,
    /// Duplicates observed at the sink — must be zero (R6).
    pub sink_duplicates: u64,
    /// Whether delivered set and shared-state digest matched a healthy run.
    pub matches_healthy: bool,
    /// Wall-clock seconds of the faulted run end to end.
    pub wall_s: f64,
}

impl RecoveryRecord {
    /// Render as a JSON object (hand-rolled, like [`RuntimeBenchRecord`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"chain\":\"{BENCH_CHAIN}\",\"packets\":{},\"kill_at\":{},\
             \"packets_replayed\":{},\"log_high_water\":{},\"log_truncated\":{},\
             \"recovery_us\":{:.1},\"suppressed_duplicates\":{},\
             \"sink_duplicates\":{},\"matches_healthy\":{},\"wall_s\":{:.6}}}",
            self.packets,
            self.kill_at,
            self.packets_replayed,
            self.log_high_water,
            self.log_truncated,
            self.recovery_us,
            self.suppressed_duplicates,
            self.sink_duplicates,
            self.matches_healthy,
            self.wall_s
        )
    }
}

/// Kill the firewall (entry) instance mid-trace on the real-thread engine,
/// fail over with replay, and measure recovery. The healthy run of the same
/// trace is the correctness yardstick: identical delivered set and shared
/// digest, zero sink duplicates.
pub fn runtime_recovery_experiment(scale: Scale) -> (String, RecoveryRecord) {
    use crate::faultgen::FaultGen;
    use chc_runtime::FaultPlan;

    let trace = bench_trace(scale);
    let dag = bench_chain();
    let kill = FaultGen::new(97).entry_kill(chc_store::VertexId(1), 1, trace.len());
    let plan = FaultPlan::new().kill(kill.vertex, kill.index, kill.at_counter);

    let healthy = run_chain_realtime(
        &dag,
        ChainConfig::default(),
        &RuntimeConfig::with_batch_size(8),
        &trace,
    )
    .expect("valid dag");
    let start = Instant::now();
    let faulted = run_chain_realtime(
        &dag,
        ChainConfig::default(),
        &RuntimeConfig::with_batch_size(8).with_fault(plan),
        &trace,
    )
    .expect("valid dag");
    let wall_s = start.elapsed().as_secs_f64();

    let sorted = |r: &chc_runtime::RuntimeReport| {
        let mut ids = r.delivered_ids.clone();
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    let matches_healthy =
        sorted(&healthy) == sorted(&faulted) && healthy.shared_digest() == faulted.shared_digest();
    let fault = faulted.fault.as_ref().expect("fault report present");
    let recovery = fault.recoveries.first().expect("one failover executed");
    let record = RecoveryRecord {
        packets: faulted.injected,
        kill_at: kill.at_counter,
        packets_replayed: recovery.packets_replayed,
        log_high_water: fault.log_high_water,
        log_truncated: fault.log_truncated,
        recovery_us: recovery.recovery_wall.as_secs_f64() * 1e6,
        suppressed_duplicates: faulted
            .instances
            .iter()
            .map(|i| i.suppressed_duplicates)
            .sum(),
        sink_duplicates: faulted.duplicates,
        matches_healthy,
        wall_s,
    };

    let mut out = String::from(
        "Real-thread NF failover — firewall killed mid-trace, replacement + replay (R1)\n",
    );
    let _ = writeln!(
        out,
        "  kill at clock {:>7} of {:>7} packets   replayed {:>6}   recovery {:>9.1} us",
        record.kill_at, record.packets, record.packets_replayed, record.recovery_us
    );
    let _ = writeln!(
        out,
        "  log high-water {:>6} (truncated {:>6})   suppressed dups {:>6}   sink dups {}",
        record.log_high_water,
        record.log_truncated,
        record.suppressed_duplicates,
        record.sink_duplicates
    );
    let _ = writeln!(
        out,
        "  delivered set + shared-state digest match healthy run: {}",
        if record.matches_healthy { "yes" } else { "NO" }
    );
    (out, record)
}

/// Serialize bench records (plus run metadata and, when measured, the
/// recovery experiment) into the `BENCH_*.json` document `paper_eval
/// --json` writes.
pub fn records_to_json(
    scale: Scale,
    records: &[RuntimeBenchRecord],
    recovery: Option<&RecoveryRecord>,
) -> String {
    let rows: Vec<String> = records
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let recovery_field = match recovery {
        Some(r) => format!(",\n  \"recovery\": {}", r.to_json()),
        None => String::new(),
    };
    format!(
        "{{\n  \"generated_by\": \"paper_eval\",\n  \"scale\": {},\n  \"runtime_chain\": [\n{}\n  ]{}\n}}\n",
        scale.0,
        rows.join(",\n"),
        recovery_field
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realtime_bench_produces_sane_records() {
        let records = bench_realtime(Scale(0.05), &[4, 32]);
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.chain, BENCH_CHAIN);
            assert_eq!(r.substrate, "realtime");
            assert!(r.packets > 0 && r.delivered > 0);
            assert!(r.delivered <= r.packets);
            assert!(r.pps > 0.0 && r.wall_s > 0.0);
            assert!(r.p50_us <= r.p99_us);
            assert!(r.store_ops > 0);
        }
    }

    #[test]
    fn simulator_bench_and_json_shape() {
        let sim = bench_simulator(Scale(0.05));
        assert_eq!(sim.substrate, "simulator");
        assert!(sim.delivered > 0 && sim.pps > 0.0);

        let json = records_to_json(Scale(0.05), &[sim], None);
        assert!(json.contains("\"runtime_chain\""));
        assert!(json.contains("\"substrate\":\"simulator\""));
        assert!(json.contains("\"generated_by\": \"paper_eval\""));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the workspace).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn recovery_experiment_measures_a_correct_failover() {
        let (text, record) = runtime_recovery_experiment(Scale(0.05));
        assert!(text.contains("failover"));
        assert!(record.matches_healthy, "failover diverged from healthy run");
        assert_eq!(record.sink_duplicates, 0);
        assert!(record.packets_replayed > 0);
        assert!(record.recovery_us > 0.0);

        let json = records_to_json(Scale(0.05), &[], Some(&record));
        assert!(json.contains("\"recovery\""));
        assert!(json.contains("\"packets_replayed\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
