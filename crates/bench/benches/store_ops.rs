//! Criterion microbenchmark of the datastore (§7.1 "Datastore performance").
//!
//! The paper measures ≈5.1 M ops/s on a 4-thread store instance with 128-bit
//! keys and 64-bit values. This bench measures single-op latency of the
//! sharded [`StoreServer`] (get / set / increment) and of the offloaded
//! operations the NFs rely on, on real threads.

use chc_packet::ScopeKey;
use chc_store::{InstanceId, ObjectKey, Operation, StateKey, StoreServer, Value, VertexId};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn key(i: u16) -> StateKey {
    StateKey::shared(VertexId(1), ObjectKey::scoped("bench", ScopeKey::Port(i)))
}

fn store_ops(c: &mut Criterion) {
    let server = StoreServer::new(4);
    // Pre-populate 100k-entry-equivalent working set (1k distinct keys here
    // to keep setup fast; sharding behaviour is identical).
    for i in 0..1_000u16 {
        server
            .apply(InstanceId(0), &key(i), &Operation::Set(Value::Int(0)), None)
            .unwrap();
    }
    let mut group = c.benchmark_group("store_ops");
    group.sample_size(30);
    let mut i = 0u16;
    group.bench_function("increment", |b| {
        b.iter(|| {
            i = i.wrapping_add(1) % 1_000;
            black_box(
                server
                    .apply(InstanceId(0), &key(i), &Operation::Increment(1), None)
                    .unwrap(),
            );
        })
    });
    group.bench_function("get", |b| {
        b.iter(|| {
            i = i.wrapping_add(1) % 1_000;
            black_box(
                server
                    .apply(InstanceId(0), &key(i), &Operation::Get, None)
                    .unwrap(),
            );
        })
    });
    group.bench_function("set", |b| {
        b.iter(|| {
            i = i.wrapping_add(1) % 1_000;
            black_box(
                server
                    .apply(
                        InstanceId(0),
                        &key(i),
                        &Operation::Set(Value::Int(i as i64)),
                        None,
                    )
                    .unwrap(),
            );
        })
    });
    group.bench_function("pop_push", |b| {
        let pool = StateKey::shared(VertexId(2), ObjectKey::named("ports"));
        server
            .apply(
                InstanceId(0),
                &pool,
                &Operation::PushBack(Value::Int(1)),
                None,
            )
            .unwrap();
        b.iter(|| {
            let v = server
                .apply(InstanceId(0), &pool, &Operation::PopFront, None)
                .unwrap();
            server
                .apply(
                    InstanceId(0),
                    &pool,
                    &Operation::PushBack(v.outcome.returned),
                    None,
                )
                .unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, store_ops);
criterion_main!(benches);
