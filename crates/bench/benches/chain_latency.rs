//! Criterion benchmark of per-packet processing under the paper's
//! externalization models (the machinery behind Figures 8 and 10) and of the
//! simulated chain itself.

use chc_baselines::run_single_nf;
use chc_core::{ChainConfig, ExternalizationMode};
use chc_nf::Nat;
use chc_packet::{TraceConfig, TraceGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn chain_latency(c: &mut Criterion) {
    let trace = TraceGenerator::new(TraceConfig::small(77)).generate();
    let mut group = c.benchmark_group("single_nf_trace");
    group.sample_size(10);
    for mode in ExternalizationMode::all() {
        group.bench_function(mode.label(), |b| {
            b.iter(|| {
                let cfg = ChainConfig::with_mode(mode);
                let mut nat = Nat::default();
                let run = run_single_nf(&mut nat, mode, &cfg, &trace, 8);
                black_box(run.processed);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, chain_latency);
criterion_main!(benches);
