//! Standalone store fast-path sweep: the `store_batch` arms of
//! `paper_eval --json` without the rest of the evaluation, for iterating
//! on the `RuntimeConfig` defaults.
//!
//!     cargo run --release -p chc-bench --example store_sweep -- [scale]

fn main() {
    let scale = std::env::args()
        .nth(1)
        .map(|s| s.parse::<f64>().expect("scale must be a number"))
        .unwrap_or(1.0);
    let (text, _) = chc_bench::store_batch_experiment(chc_bench::Scale(scale));
    print!("{text}");
}
