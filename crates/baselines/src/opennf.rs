//! Behavioural model of OpenNF (Gember-Jacobson et al., SIGCOMM'14).
//!
//! OpenNF manages NF state through a central controller. The paper charges it
//! for two mechanisms:
//!
//! * **Loss-free move**: per-flow state is extracted from the source
//!   instance, shipped through the controller, and installed at the target
//!   while in-flight packets are buffered at the controller — ≈2.5 ms for a
//!   4 000-flow move (§7.3 R2), dominated by per-flow serialization plus the
//!   controller round trips.
//! * **Strongly consistent shared state**: the controller receives every
//!   packet, forwards it to every instance, and releases the next packet only
//!   after all instances ACK — ≈166 µs per packet (§7.3 R3 / Figure 11).

use chc_sim::{Histogram, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable parameters of the OpenNF model (defaults reproduce the paper's
/// reported costs on a 10 G testbed).
#[derive(Debug, Clone, Copy)]
pub struct OpenNfModel {
    /// One-way latency between an NF instance and the controller.
    pub controller_one_way: SimDuration,
    /// Controller-side cost to extract + install one flow's state.
    pub per_flow_copy: SimDuration,
    /// Per-instance ACK processing cost for consistent shared-state updates.
    pub per_instance_ack: SimDuration,
}

impl Default for OpenNfModel {
    fn default() -> Self {
        OpenNfModel {
            controller_one_way: SimDuration::from_micros(40),
            per_flow_copy: SimDuration::from_nanos(600),
            per_instance_ack: SimDuration::from_micros(3),
        }
    }
}

impl OpenNfModel {
    /// Duration of a loss-free move of `flows` flows (the controller buffers
    /// packets for the whole duration).
    pub fn loss_free_move(&self, flows: usize) -> SimDuration {
        // extract + install round trips plus per-flow copy through the
        // controller.
        self.controller_one_way.times(4)
            + SimDuration::from_nanos(self.per_flow_copy.as_nanos() * flows as u64)
    }

    /// Per-packet latency of a strongly consistent shared-state update across
    /// `instances` instances (controller fan-out + wait for all ACKs).
    pub fn consistent_update_latency(&self, instances: usize) -> SimDuration {
        self.controller_one_way.times(4)
            + SimDuration::from_nanos(self.per_instance_ack.as_nanos() * instances as u64)
    }

    /// Latency distribution over `packets` packets with a small uniform
    /// jitter, for the Figure 11 CDF.
    pub fn consistent_update_cdf(&self, instances: usize, packets: usize, seed: u64) -> Histogram {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = self.consistent_update_latency(instances).as_nanos();
        let mut h = Histogram::new();
        for _ in 0..packets {
            let jitter = rng.gen_range(0..(base / 5).max(1));
            h.record_nanos(base + jitter);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_time_matches_reported_magnitude() {
        let m = OpenNfModel::default();
        let t = m.loss_free_move(4_000);
        // The paper reports 2.5 ms for 4 000 flows; the model lands in the
        // same regime (> 1 ms, < 10 ms).
        assert!(
            t >= SimDuration::from_millis(1) && t <= SimDuration::from_millis(10),
            "{t}"
        );
    }

    #[test]
    fn consistent_updates_cost_hundreds_of_microseconds() {
        let m = OpenNfModel::default();
        let t = m.consistent_update_latency(2);
        assert!(
            t >= SimDuration::from_micros(150) && t <= SimDuration::from_micros(200),
            "{t}"
        );
        let mut cdf = m.consistent_update_cdf(2, 1_000, 7);
        assert!(cdf.median() >= t);
        assert_eq!(cdf.len(), 1_000);
    }

    #[test]
    fn move_scales_with_flow_count() {
        let m = OpenNfModel::default();
        assert!(m.loss_free_move(8_000) > m.loss_free_move(4_000));
        assert!(m.consistent_update_latency(10) > m.consistent_update_latency(2));
    }
}
