//! A standalone single-NF runner.
//!
//! Drives one NF instance over a trace without deploying a whole chain:
//! per-packet latency is the NF's base processing cost plus the state-access
//! charges of the client library, and throughput follows the same
//! multi-worker capacity model as [`chc_core::instance::NfInstanceActor`].
//! This mirrors the paper's §7.1 methodology ("We study each NF type in
//! isolation first") and backs the Figure 8/9/10 harnesses.

use chc_core::{
    Action, ChainConfig, ExternalizationMode, NetworkFunction, NfContext, SharedStore, StateClient,
};
use chc_packet::Trace;
use chc_sim::{Histogram, SimDuration, Summary, Throughput, TimeSeries, VirtualTime};
use chc_store::{Clock, InstanceId, VertexId};

/// Result of a single-NF run.
pub struct SingleNfRun {
    /// Per-packet processing-time distribution.
    pub latency: Histogram,
    /// Per-packet processing time as a time series (packet index → µs).
    pub series: TimeSeries,
    /// Sustained throughput in Gbps under the worker capacity model.
    pub throughput_gbps: f64,
    /// Packets processed.
    pub processed: u64,
    /// Packets the NF dropped.
    pub dropped: u64,
    /// Alerts raised.
    pub alerts: Vec<String>,
    /// The store backing the run (for state inspection).
    pub store: SharedStore,
}

impl SingleNfRun {
    /// Five-number latency summary (the paper's box plots).
    pub fn summary(&mut self) -> Summary {
        self.latency.summary()
    }
}

/// Run `nf` over `trace` under `mode`, with `workers` parallel processing
/// threads per instance (the paper's NFs are multi-threaded processes).
pub fn run_single_nf(
    nf: &mut dyn NetworkFunction,
    mode: ExternalizationMode,
    config: &ChainConfig,
    trace: &Trace,
    workers: usize,
) -> SingleNfRun {
    let store = SharedStore::new();
    run_single_nf_with_store(nf, mode, config, trace, workers, &store, 0)
}

/// Like [`run_single_nf`] but against an existing store and with an explicit
/// instance id (used when several instances must share state).
pub fn run_single_nf_with_store(
    nf: &mut dyn NetworkFunction,
    mode: ExternalizationMode,
    config: &ChainConfig,
    trace: &Trace,
    workers: usize,
    store: &SharedStore,
    instance: u32,
) -> SingleNfRun {
    let mut client = StateClient::new(
        VertexId(1),
        InstanceId(instance),
        Box::new(store.clone()),
        mode,
        config.costs,
        &nf.state_objects(),
    );
    let mut latency = Histogram::new();
    let mut series = TimeSeries::new();
    let mut throughput = Throughput::new();
    let mut workers_busy = vec![VirtualTime::ZERO; workers.max(1)];
    let mut alerts = Vec::new();
    let mut dropped = 0u64;
    let mut processed = 0u64;

    for (i, pkt) in trace.iter().enumerate() {
        let arrival = VirtualTime::from_nanos(pkt.arrival_ns);
        let clock = Clock::with_root(0, i as u64 + 1);
        let mut ctx = NfContext::new(&mut client, clock, arrival);
        let action = nf.process(pkt, &mut ctx);
        alerts.extend(ctx.take_alerts());
        let proc = config.costs.base_processing + client.take_charge();
        client.take_packet_tokens();
        client.take_pending_callbacks();

        // Worker capacity model.
        let (widx, free_at) = workers_busy
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|(_, t)| *t)
            .expect("worker");
        let start = arrival.max(free_at);
        let finish = start + proc;
        workers_busy[widx] = finish;

        latency.record(proc);
        series.push(arrival, proc.as_micros_f64());
        throughput.record(finish, pkt.len as u64);
        processed += 1;
        if matches!(action, Action::Drop) {
            dropped += 1;
        }
    }

    SingleNfRun {
        latency,
        series,
        throughput_gbps: throughput.gbps(),
        processed,
        dropped,
        alerts,
        store: store.clone(),
    }
}

/// Sweep all four externalization modes for one NF, returning
/// `(mode, latency summary, throughput)` rows — exactly the data behind
/// Figures 8 and 10.
pub fn sweep_modes(
    mut make_nf: impl FnMut() -> Box<dyn NetworkFunction>,
    trace: &Trace,
    workers: usize,
) -> Vec<(ExternalizationMode, Summary, f64)> {
    ExternalizationMode::all()
        .into_iter()
        .map(|mode| {
            let config = ChainConfig::with_mode(mode);
            let mut nf = make_nf();
            let mut run = run_single_nf(nf.as_mut(), mode, &config, trace, workers);
            (mode, run.summary(), run.throughput_gbps)
        })
        .collect()
}

/// Extra processing delay added to every packet, modelling a straggling or
/// resource-contended instance (used by the R4/R5 experiments).
pub fn run_with_fixed_delay(
    nf: &mut dyn NetworkFunction,
    mode: ExternalizationMode,
    config: &ChainConfig,
    trace: &Trace,
    workers: usize,
    extra: SimDuration,
) -> SingleNfRun {
    let mut cfg = *config;
    cfg.costs.base_processing += extra;
    run_single_nf(nf, mode, &cfg, trace, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chc_nf::{Nat, PortscanDetector};
    use chc_packet::{TraceConfig, TraceGenerator};

    fn trace() -> Trace {
        TraceGenerator::new(TraceConfig::small(21)).generate()
    }

    #[test]
    fn traditional_vs_externalized_latency_shape() {
        let trace = trace();
        let rows = sweep_modes(|| Box::new(Nat::default()), &trace, 8);
        assert_eq!(rows.len(), 4);
        let t = rows[0].1.p50;
        let eo = rows[1].1.p50;
        let eo_c = rows[2].1.p50;
        let full = rows[3].1.p50;
        // The paper's Figure 8 shape: EO ≫ EO+C > EO+C+NA ≈ T.
        assert!(eo > eo_c, "EO {eo} should exceed EO+C {eo_c}");
        assert!(eo_c > full, "EO+C {eo_c} should exceed EO+C+NA {full}");
        assert!(
            full < t + SimDuration::from_micros(1),
            "full CHC within 1us of traditional"
        );
        // Throughput collapses under EO and recovers with the optimizations.
        assert!(rows[1].2 < rows[0].2);
        assert!(rows[3].2 > rows[1].2 * 2.0);
    }

    #[test]
    fn detectors_unaffected_by_externalization_on_data_packets() {
        // Scan/Trojan detectors do not update state on every packet, so even
        // the unoptimized EO mode barely moves their median (the paper sees
        // no noticeable impact).
        let trace = trace();
        let rows = sweep_modes(|| Box::new(PortscanDetector::default()), &trace, 8);
        let t = rows[0].1.p50.as_micros_f64();
        let eo = rows[1].1.p50.as_micros_f64();
        assert!(eo - t < 30.0, "median grew by {}us", eo - t);
    }

    #[test]
    fn fixed_delay_shifts_latency() {
        let trace = trace();
        let cfg = ChainConfig::with_mode(ExternalizationMode::ExternalizedCachedNonBlocking);
        let mut nat = Nat::default();
        let mut slow = run_with_fixed_delay(
            &mut nat,
            cfg.mode,
            &cfg,
            &trace,
            8,
            SimDuration::from_micros(10),
        );
        let mut nat2 = Nat::default();
        let mut fast = run_single_nf(&mut nat2, cfg.mode, &cfg, &trace, 8);
        assert!(slow.summary().p50 > fast.summary().p50 + SimDuration::from_micros(9));
    }
}
