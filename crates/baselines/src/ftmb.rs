//! Behavioural model of FTMB (Sherry et al., SIGCOMM'15).
//!
//! FTMB provides NF fault tolerance by ordered logging plus periodic output
//! commit / checkpointing. The CHC paper could not obtain FTMB's code and
//! emulates its checkpointing overhead as a 5 000 µs processing pause every
//! 200 ms (from FTMB's own Figure 6); packets arriving during the pause are
//! buffered and drained afterwards, which inflates tail latency (Figure 12).
//! This module reproduces that emulation.

use chc_sim::{Histogram, SimDuration, VirtualTime};

/// Parameters of the FTMB checkpointing model.
#[derive(Debug, Clone, Copy)]
pub struct FtmbModel {
    /// Interval between checkpoints.
    pub checkpoint_interval: SimDuration,
    /// Duration packet processing stalls per checkpoint.
    pub checkpoint_pause: SimDuration,
    /// Per-packet processing latency outside checkpoints.
    pub base_latency: SimDuration,
}

impl Default for FtmbModel {
    fn default() -> Self {
        FtmbModel {
            checkpoint_interval: SimDuration::from_millis(200),
            checkpoint_pause: SimDuration::from_micros(5_000),
            base_latency: SimDuration::from_micros(2),
        }
    }
}

impl FtmbModel {
    /// Latency experienced by a packet arriving at `arrival`: if it lands in
    /// a checkpoint pause it waits for the pause to end (plus the backlog in
    /// front of it is ignored — a lower bound favourable to FTMB).
    pub fn packet_latency(&self, arrival: VirtualTime) -> SimDuration {
        let interval = self.checkpoint_interval.as_nanos();
        let pause = self.checkpoint_pause.as_nanos();
        let phase = arrival.as_nanos() % interval;
        // The checkpoint occupies the first `pause` nanoseconds of each
        // interval.
        if phase < pause {
            SimDuration::from_nanos(pause - phase) + self.base_latency
        } else {
            self.base_latency
        }
    }

    /// Latency distribution for packets arriving at the given times.
    pub fn latency_distribution(&self, arrivals: impl Iterator<Item = VirtualTime>) -> Histogram {
        let mut h = Histogram::new();
        for a in arrivals {
            h.record(self.packet_latency(a));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_during_checkpoint_wait() {
        let m = FtmbModel::default();
        // Arrives right at the start of a checkpoint: waits the full pause.
        let worst = m.packet_latency(VirtualTime::from_millis(200));
        assert!(worst >= SimDuration::from_micros(5_000));
        // Arrives mid-interval: only the base latency.
        let best = m.packet_latency(VirtualTime::from_millis(100));
        assert_eq!(best, m.base_latency);
    }

    #[test]
    fn tail_latency_inflated_versus_median() {
        let m = FtmbModel::default();
        // Uniform arrivals over one second at 1 µs spacing.
        let mut h =
            m.latency_distribution((0..1_000_000u64).map(|i| VirtualTime::from_nanos(i * 1_000)));
        let p50 = h.median();
        let p99 = h.percentile(99.0);
        // ~2.5% of packets land in a pause; the 99th percentile shows the
        // multi-millisecond stall while the median stays small.
        assert!(p50 <= SimDuration::from_micros(10), "median {p50}");
        assert!(p99 >= SimDuration::from_micros(1_000), "p99 {p99}");
    }
}
