//! # chc-baselines
//!
//! The systems the CHC paper compares against, plus a standalone single-NF
//! runner used by the per-figure benchmark harnesses:
//!
//! * [`single_nf`] — drives one NF over a trace under any externalization
//!   mode (T / EO / EO+C / EO+C+NA) with the same cost and worker model the
//!   chain uses; produces the per-packet latency distribution and throughput
//!   of Figures 8 and 10.
//! * [`opennf`] — a behavioural model of OpenNF's controller-mediated state
//!   operations: loss-free `move()` that copies per-flow state through the
//!   controller, and strongly consistent shared-state updates in which the
//!   controller forwards every packet to every instance and waits for ACKs
//!   (Figure 11, R2/R3 comparisons).
//! * [`ftmb`] — a behavioural model of FTMB's periodic checkpointing: packet
//!   processing stalls for the checkpoint duration at every checkpoint
//!   interval, inflating tail latency (Figure 12). The paper itself emulates
//!   FTMB the same way (5000 µs pause every 200 ms).
//! * [`statelessnf`] — StatelessNF-style external state accessed with a
//!   lock / read-modify-write round-trip pair per operation instead of CHC's
//!   offloaded operations (the §7.1 "operation offloading" comparison).
//!
//! These models implement exactly the mechanisms the paper charges the
//! baselines for; none of the original codebases are available, and the
//! numbers the paper reports for them are themselves partially emulated.

pub mod ftmb;
pub mod opennf;
pub mod single_nf;
pub mod statelessnf;

pub use ftmb::FtmbModel;
pub use opennf::OpenNfModel;
pub use single_nf::{
    run_single_nf, run_single_nf_with_store, run_with_fixed_delay, sweep_modes, SingleNfRun,
};
pub use statelessnf::StatelessNfModel;
