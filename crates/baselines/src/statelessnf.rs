//! Behavioural model of StatelessNF-style state access (Kablan et al.,
//! NSDI'17) and of the "naive" read-modify-write alternative to CHC's
//! operation offloading (§7.1 "Operation offloading").
//!
//! Without offloaded operations, updating shared state requires reading the
//! value (one RTT), updating it locally, and writing it back (another RTT),
//! typically under a lock that serializes the instances. CHC instead sends
//! the operation and lets the store serialize, needing at most one RTT — and
//! zero on the packet path when the NF does not wait for the ACK.

use chc_sim::SimDuration;

/// Parameters of the lock/read-modify-write model.
#[derive(Debug, Clone, Copy)]
pub struct StatelessNfModel {
    /// One-way latency to the remote store.
    pub store_one_way: SimDuration,
    /// Average extra wait for the per-object lock under contention.
    pub lock_contention: SimDuration,
}

impl Default for StatelessNfModel {
    fn default() -> Self {
        StatelessNfModel {
            store_one_way: SimDuration::from_micros(14),
            lock_contention: SimDuration::from_micros(5),
        }
    }
}

impl StatelessNfModel {
    /// Per-packet latency of `ops` read-modify-write updates (2 RTTs plus
    /// lock wait each).
    pub fn rmw_packet_latency(&self, ops: usize) -> SimDuration {
        let one = self.store_one_way.times(4) + self.lock_contention;
        SimDuration::from_nanos(one.as_nanos() * ops as u64)
    }

    /// Per-packet latency of the same `ops` updates under CHC offloading,
    /// with (`wait_for_ack = true`) or without waiting for the ACK.
    pub fn offload_packet_latency(&self, ops: usize, wait_for_ack: bool) -> SimDuration {
        if wait_for_ack {
            SimDuration::from_nanos(self.store_one_way.times(2).as_nanos() * ops as u64)
        } else {
            SimDuration::from_nanos(150 * ops as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offloading_beats_read_modify_write_by_about_2x() {
        let m = StatelessNfModel::default();
        let naive = m.rmw_packet_latency(2);
        let offload = m.offload_packet_latency(2, true);
        let ratio = naive.as_nanos() as f64 / offload.as_nanos() as f64;
        // The paper reports 2.17x; the model sits in the same band.
        assert!(ratio > 1.8 && ratio < 2.6, "ratio {ratio}");
        // Not waiting for ACKs removes the store from the packet path.
        assert!(m.offload_packet_latency(2, false) < SimDuration::from_micros(1));
    }
}
