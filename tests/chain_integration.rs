//! Integration tests: a full CHC chain (NAT → portscan detector → load
//! balancer, with the Trojan detector off-path) processing synthetic traces
//! on the simulator, checked for chain output equivalence against the ideal
//! single-instance chain.

use chc::prelude::*;
use chc_core::coe::{coe_violations, run_ideal_chain};
use chc_core::{ChainController, LogicalDag, VertexSpec};
use chc_store::VertexId;
use std::rc::Rc;

fn standard_chain() -> LogicalDag {
    let mut dag = LogicalDag::linear(vec![
        VertexSpec::new(1, "nat", Rc::new(|| Box::new(Nat::default()))),
        VertexSpec::new(
            2,
            "portscan",
            Rc::new(|| Box::new(PortscanDetector::default())),
        ),
        VertexSpec::new(
            3,
            "lb",
            Rc::new(|| Box::new(LoadBalancer::with_default_backends())),
        ),
    ]);
    let trojan = dag.add_vertex(
        VertexSpec::new(4, "trojan", Rc::new(|| Box::new(TrojanDetector::new()))).off_path(),
    );
    dag.add_edge(VertexId(1), trojan);
    dag
}

fn small_trace(seed: u64) -> Trace {
    TraceGenerator::new(TraceConfig::small(seed).with_trojans(2).with_scanners(0.1)).generate()
}

#[test]
fn chain_delivers_traffic_and_matches_ideal_chain() {
    let trace = small_trace(5);
    let ideal = run_ideal_chain(&standard_chain(), &trace);

    let mut chain = ChainController::new(standard_chain(), ChainConfig::default(), 1).unwrap();
    chain.inject_trace(&trace);
    chain.run();
    let metrics = chain.metrics();

    // Every instance processed traffic and the sink saw no duplicates.
    assert!(metrics.sink_delivered > 0);
    assert_eq!(metrics.sink_duplicates, 0);
    assert_eq!(metrics.root.dropped, 0);

    // COE: delivered set and alerts match the ideal chain.
    let violations = coe_violations(
        &ideal,
        &chain.delivered_ids(),
        metrics.sink_duplicates,
        &metrics.alerts(),
        false,
    );
    assert!(violations.is_empty(), "COE violations: {violations:?}");

    // The Trojan signatures injected into the trace were all detected.
    let trojan_alerts = metrics
        .alerts()
        .iter()
        .filter(|(_, m)| m.contains("trojan"))
        .count();
    assert_eq!(trojan_alerts, 2);

    // The root eventually unlogged every packet it accepted (the XOR commit
    // protocol converged).
    assert_eq!(metrics.root.deleted, metrics.root.packets_in);
}

#[test]
fn chain_works_under_every_externalization_mode() {
    let trace = small_trace(7);
    let ideal = run_ideal_chain(&standard_chain(), &trace);
    for mode in ExternalizationMode::all() {
        let cfg = ChainConfig::with_mode(mode);
        let mut chain = ChainController::new(standard_chain(), cfg, 2).unwrap();
        chain.inject_trace(&trace);
        chain.run();
        let metrics = chain.metrics();
        let violations = coe_violations(
            &ideal,
            &chain.delivered_ids(),
            metrics.sink_duplicates,
            &metrics.alerts(),
            false,
        );
        assert!(
            violations.is_empty(),
            "mode {:?}: {violations:?}",
            mode.label()
        );
    }
}

#[test]
fn nf_failover_preserves_output_equivalence() {
    let trace = small_trace(9);
    let ideal = run_ideal_chain(&standard_chain(), &trace);

    let mut chain = ChainController::new(standard_chain(), ChainConfig::default(), 3).unwrap();
    chain.inject_trace(&trace);
    // Run a third of the trace, crash the NAT, fail over, finish.
    let third = trace.packets[trace.len() / 3].arrival_ns;
    chain.run_until(VirtualTime::from_nanos(third));
    chain.fail_instance(VertexId(1), 0);
    chain.failover_instance(VertexId(1), 0);
    chain.run();

    let metrics = chain.metrics();
    // Failover must not create duplicates at the end host (R6), and alerts
    // must match the ideal chain. In-flight packets may be lost exactly as a
    // network drop would lose them.
    let violations = coe_violations(
        &ideal,
        &chain.delivered_ids(),
        metrics.sink_duplicates,
        &metrics.alerts(),
        true,
    );
    assert!(
        violations.is_empty(),
        "COE violations after failover: {violations:?}"
    );
    assert_eq!(metrics.sink_duplicates, 0);
}

#[test]
fn elastic_scale_up_moves_flows_without_loss_or_reorder() {
    let trace = small_trace(11);
    let ideal = run_ideal_chain(&standard_chain(), &trace);

    let mut chain = ChainController::new(standard_chain(), ChainConfig::default(), 4).unwrap();
    chain.inject_trace(&trace);
    let midpoint = trace.packets[trace.len() / 2].arrival_ns;
    chain.run_until(VirtualTime::from_nanos(midpoint));

    // Scale the NAT up and move a slice of flows onto the new instance.
    let (_, new_index) = chain.scale_up(VertexId(1));
    let keys: Vec<_> = {
        let splitter_scope = chc_packet::Scope::FiveTuple;
        trace
            .packets
            .iter()
            .map(|p| splitter_scope.key_of(p))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .take(40)
            .collect()
    };
    chain.move_flows(VertexId(1), &keys, new_index);
    chain.run();

    let metrics = chain.metrics();
    // The new instance took over some traffic.
    let new_instance_report = &metrics.vertex(VertexId(1))[new_index];
    assert!(
        new_instance_report.processed > 0,
        "new instance processed nothing"
    );
    // And chain output equivalence still holds, with no duplicates or drops.
    let violations = coe_violations(
        &ideal,
        &chain.delivered_ids(),
        metrics.sink_duplicates,
        &metrics.alerts(),
        false,
    );
    assert!(
        violations.is_empty(),
        "COE violations after scale-up: {violations:?}"
    );
}

#[test]
fn straggler_clone_suppresses_duplicates() {
    let trace = small_trace(13);
    let mut chain = ChainController::new(standard_chain(), ChainConfig::default(), 5).unwrap();
    chain.inject_trace(&trace);
    let early = trace.packets[trace.len() / 4].arrival_ns;
    chain.run_until(VirtualTime::from_nanos(early));

    // The NAT becomes a straggler; CHC deploys a clone fed by replicated
    // traffic and replays logged packets to it.
    chain.set_straggler(VertexId(1), 0, SimDuration::from_micros(8));
    chain.clone_for_straggler(VertexId(1), 0);
    chain.run();

    let metrics = chain.metrics();
    // Replication + replay would naively double packets at the downstream
    // portscan detector and at the sink; CHC suppresses all of it.
    assert_eq!(metrics.sink_duplicates, 0);
    let portscan = &metrics.vertex(VertexId(2))[0];
    assert_eq!(
        portscan.duplicate_packets, 0,
        "duplicates processed downstream"
    );
    assert!(
        portscan.suppressed_duplicates > 0,
        "expected suppressed duplicates downstream"
    );
}

#[test]
fn store_failover_recovers_shared_state() {
    let trace = small_trace(17);
    let mut chain = ChainController::new(standard_chain(), ChainConfig::default(), 6).unwrap();
    chain.inject_trace(&trace);
    let mid = trace.packets[trace.len() / 2].arrival_ns;
    chain.run_until(VirtualTime::from_nanos(mid));
    chain.checkpoint_store();
    // Keep processing past the checkpoint, then crash and recover the store.
    let later = trace.packets[trace.len() * 3 / 4].arrival_ns;
    chain.run_until(VirtualTime::from_nanos(later));
    let counter_key = chc_store::StateKey::shared(
        VertexId(1),
        chc_store::ObjectKey::named(chc_nf::nat::PKT_COUNT),
    );
    let before = chain.store.with(|s| s.peek(&counter_key));
    let report = chain.recover_store();
    let after = chain.store.with(|s| s.peek(&counter_key));
    assert_eq!(before, after, "shared counter must survive store failover");
    assert!(
        report.replayed_ops > 0,
        "recovery replayed write-ahead log entries"
    );
    // The chain keeps running correctly afterwards.
    chain.run();
    let metrics = chain.metrics();
    assert_eq!(metrics.sink_duplicates, 0);
}

#[test]
fn root_failover_resumes_with_larger_clocks() {
    let trace = small_trace(19);
    let mut chain = ChainController::new(standard_chain(), ChainConfig::default(), 7).unwrap();
    chain.inject_trace(&trace);
    let mid = trace.packets[trace.len() / 2].arrival_ns;
    chain.run_until(VirtualTime::from_nanos(mid));
    chain.fail_root();
    chain.recover_root();
    chain.run();
    let metrics = chain.metrics();
    // Packets that were at the failed root are lost (allowed, as a network
    // drop), but nothing is duplicated and the chain kept processing.
    assert_eq!(metrics.sink_duplicates, 0);
    assert!(metrics.sink_delivered > 0);
}
