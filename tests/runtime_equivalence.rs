//! Substrate equivalence: the real-thread runtime and the deterministic
//! simulator must produce COE-equivalent output for the same seeded trace —
//! the same delivered packet set, no duplicates, the same alerts and the
//! same final shared-state digest — including across an elastic scale-out
//! event **and across a mid-trace instance failure with recovery**, and
//! deterministically across seeds and repeated runs.
//!
//! Two mechanisms carry the equivalence:
//!
//! * the logical-clock-keyed traffic cut
//!   (`ChainController::schedule_scale_up` / `RuntimeConfig::with_scale`):
//!   the flow→instance history is a pure function of the input trace, so
//!   both substrates partition identically even though one runs in virtual
//!   time and the other on wall clocks; and
//! * idempotent replay: both substrates suppress duplicate clocks at
//!   instance queues and at the store, so killing an instance mid-trace and
//!   replaying the root's packet log converges both of them to the *same*
//!   observables a failure-free run produces — which is exactly the paper's
//!   R1 claim, checked here across substrates and seeds.

use chc_bench::faultgen::FaultGen;
use chc_core::coe::{coe_violations, run_ideal_chain};
use chc_core::root::ROOT_VERTEX;
use chc_core::{ChainConfig, ChainController, LogicalDag, VertexSpec};
use chc_nf::{Firewall, Nat};
use chc_packet::{PacketId, Trace, TraceConfig, TraceGenerator};
use chc_runtime::{
    run_chain_realtime, shared_state_digest, FaultPlan, InstanceKill, RuntimeConfig,
};
use chc_sim::VirtualTime;
use chc_store::{InstanceId, StateKey, Value, VertexId};
use std::collections::BTreeMap;
use std::rc::Rc;

const FW_VERTEX: VertexId = VertexId(1);
const NAT_VERTEX: VertexId = VertexId(2);

fn firewall_nat() -> LogicalDag {
    LogicalDag::linear(vec![
        VertexSpec::new(
            1,
            "firewall",
            Rc::new(|| Box::new(Firewall::with_default_policy())),
        ),
        VertexSpec::new(2, "nat", Rc::new(|| Box::new(Nat::default()))),
    ])
}

fn trace_for(seed: u64) -> Trace {
    TraceGenerator::new(TraceConfig::small(seed)).generate()
}

/// Digest of the simulator's final shared state, excluding the root's own
/// metadata (the persisted clock has no runtime counterpart).
fn sim_digest(entries: Vec<(StateKey, Value, Option<InstanceId>)>) -> BTreeMap<String, String> {
    shared_state_digest(
        entries
            .into_iter()
            .filter(|(k, _, _)| k.vertex != ROOT_VERTEX),
    )
}

/// Run the simulator with a scale-out cut at `first_counter`, returning
/// (sorted delivered ids, duplicates, alerts, shared digest).
fn run_sim(
    trace: &Trace,
    seed: u64,
    first_counter: u64,
) -> (Vec<PacketId>, u64, Vec<String>, BTreeMap<String, String>) {
    let mut chain = ChainController::new(firewall_nat(), ChainConfig::default(), seed).unwrap();
    chain.schedule_scale_up(NAT_VERTEX, first_counter);
    chain.inject_trace(trace);
    chain.run();
    let metrics = chain.metrics();
    let mut ids = chain.delivered_ids();
    ids.sort_unstable();
    let alerts = metrics.alerts().into_iter().map(|(_, m)| m).collect();
    let digest = sim_digest(chain.store.with(|s| s.entries()));
    (ids, metrics.sink_duplicates, alerts, digest)
}

/// Run the real-thread engine with the same scale cut, returning the same
/// observables.
fn run_rt(
    trace: &Trace,
    first_counter: u64,
    batch: usize,
) -> (Vec<PacketId>, u64, Vec<String>, BTreeMap<String, String>) {
    let rt_cfg = RuntimeConfig::with_batch_size(batch).with_scale(NAT_VERTEX, first_counter);
    let report =
        run_chain_realtime(&firewall_nat(), ChainConfig::default(), &rt_cfg, trace).unwrap();
    // The online sentinel checked the run (scale-cut aware) and found
    // nothing: frontier monotone, flows in order, copies conserved.
    let inv = report.invariants.as_ref().expect("sentinel on by default");
    assert!(inv.ok(), "sentinel violations: {:?}", inv.violations);
    let mut ids = report.delivered_ids.clone();
    ids.sort_unstable();
    let alerts = report.alerts().into_iter().map(|(_, m)| m).collect();
    let digest = report.shared_digest();
    (ids, report.duplicates, alerts, digest)
}

#[test]
fn runtime_matches_simulator_across_scale_out_and_seeds() {
    for seed in [11u64, 23, 47] {
        let trace = trace_for(seed);
        let cut = (trace.len() / 2) as u64;

        let (sim_ids, sim_dups, sim_alerts, sim_state) = run_sim(&trace, seed, cut);
        let (rt_ids, rt_dups, rt_alerts, rt_state) = run_rt(&trace, cut, 16);

        assert_eq!(sim_dups, 0, "seed {seed}: simulator sink saw duplicates");
        assert_eq!(rt_dups, 0, "seed {seed}: runtime sink saw duplicates");
        assert!(
            !sim_ids.is_empty(),
            "seed {seed}: simulator delivered nothing"
        );
        assert_eq!(sim_ids, rt_ids, "seed {seed}: delivered packet sets differ");
        assert_eq!(sim_alerts, rt_alerts, "seed {seed}: alert multisets differ");
        assert_eq!(
            sim_state, rt_state,
            "seed {seed}: final shared state differs"
        );

        // The runtime itself is deterministic run-to-run, and the batch size
        // is an implementation detail that must not leak into the output.
        let (rt_ids2, _, _, rt_state2) = run_rt(&trace, cut, 4);
        assert_eq!(
            rt_ids, rt_ids2,
            "seed {seed}: runtime output varies across runs"
        );
        assert_eq!(
            rt_state, rt_state2,
            "seed {seed}: runtime state varies across runs"
        );
    }
}

/// Run the simulator with a fail-stop kill of one firewall (entry) instance
/// at the trigger packet's arrival time, followed by failover + replay.
fn run_sim_with_kill(
    trace: &Trace,
    seed: u64,
    kill: &InstanceKill,
) -> (Vec<PacketId>, u64, Vec<String>, BTreeMap<String, String>) {
    let mut chain = ChainController::new(firewall_nat(), ChainConfig::default(), seed).unwrap();
    chain.inject_trace(trace);
    // The runtime triggers on the logical clock; the simulator reaches the
    // same point by running to the trigger packet's arrival (packet n is
    // stamped counter n). The exact crash instant need not line up — replay
    // converges both substrates to the failure-free observables.
    let at = trace.packets[(kill.at_counter - 1) as usize].arrival_ns;
    chain.run_until(VirtualTime::from_nanos(at));
    chain.fail_instance(kill.vertex, kill.index);
    chain.failover_instance(kill.vertex, kill.index);
    chain.run();
    let metrics = chain.metrics();
    let mut ids = chain.delivered_ids();
    ids.sort_unstable();
    let alerts = metrics.alerts().into_iter().map(|(_, m)| m).collect();
    let digest = sim_digest(chain.store.with(|s| s.entries()));
    (ids, metrics.sink_duplicates, alerts, digest)
}

/// Run the real-thread engine with the same seeded kill as a `FaultPlan`.
fn run_rt_with_kill(
    trace: &Trace,
    kill: &InstanceKill,
    batch: usize,
) -> (Vec<PacketId>, u64, Vec<String>, BTreeMap<String, String>) {
    let rt_cfg = RuntimeConfig::with_batch_size(batch).with_fault(FaultPlan::new().kill(
        kill.vertex,
        kill.index,
        kill.at_counter,
    ));
    let report =
        run_chain_realtime(&firewall_nat(), ChainConfig::default(), &rt_cfg, trace).unwrap();
    // The engine really executed the failover, with replay — and the
    // sentinel watched the whole recovery without flagging anything.
    let inv = report.invariants.as_ref().expect("sentinel on by default");
    assert!(inv.ok(), "sentinel violations: {:?}", inv.violations);
    let fault = report.fault.as_ref().expect("fault report present");
    assert_eq!(fault.recoveries.len(), 1, "failover did not run");
    assert!(fault.recoveries[0].packets_replayed > 0, "nothing replayed");
    assert_eq!(report.failed_instances.len(), 1);
    let mut ids = report.delivered_ids.clone();
    ids.sort_unstable();
    let alerts = report.alerts().into_iter().map(|(_, m)| m).collect();
    let digest = report.shared_digest();
    (ids, report.duplicates, alerts, digest)
}

#[test]
fn runtime_matches_simulator_across_instance_failure_and_recovery() {
    for seed in [7u64, 19, 37] {
        let trace = trace_for(seed);
        // Same seeded fault scenario on both substrates: one firewall
        // (entry) instance killed in the middle third of the trace.
        let kill = FaultGen::new(seed).entry_kill(FW_VERTEX, 1, trace.len());

        let (sim_ids, sim_dups, sim_alerts, sim_state) = run_sim_with_kill(&trace, seed, &kill);
        let (rt_ids, rt_dups, rt_alerts, rt_state) = run_rt_with_kill(&trace, &kill, 16);

        // R6 at the end host: recovery must not manufacture duplicates.
        assert_eq!(sim_dups, 0, "seed {seed}: simulator sink saw duplicates");
        assert_eq!(rt_dups, 0, "seed {seed}: runtime sink saw duplicates");
        // R1 across substrates: identical delivered sets, alert multisets
        // and shared-state digests despite the crash.
        assert!(
            !sim_ids.is_empty(),
            "seed {seed}: simulator delivered nothing"
        );
        assert_eq!(sim_ids, rt_ids, "seed {seed}: delivered packet sets differ");
        assert_eq!(sim_alerts, rt_alerts, "seed {seed}: alert multisets differ");
        assert_eq!(
            sim_state, rt_state,
            "seed {seed}: final shared state differs"
        );

        // And the failure was absorbed entirely: both substrates converge to
        // the observables of a failure-free run of the same trace.
        let (healthy_ids, _, _, healthy_state) = {
            let report = run_chain_realtime(
                &firewall_nat(),
                ChainConfig::default(),
                &RuntimeConfig::with_batch_size(16),
                &trace,
            )
            .unwrap();
            let mut ids = report.delivered_ids.clone();
            ids.sort_unstable();
            (ids, 0u64, (), report.shared_digest())
        };
        assert_eq!(healthy_ids, rt_ids, "seed {seed}: failover lost packets");
        assert_eq!(
            healthy_state, rt_state,
            "seed {seed}: failover perturbed shared state"
        );
    }
}

/// The failure matrix: a seeded kill at **every chain position** — entry,
/// mid-chain, tail, and the root stamping thread itself — must converge the
/// real-thread engine to the simulator's observables for the same trace,
/// with zero sentinel violations.
///
/// The simulator absorbs any single instance failure into the failure-free
/// observables (that is its R1 property, asserted by its own tier-1 tests),
/// so a healthy simulator run is the yardstick for every position; the
/// entry column is additionally checked against a simulator run that
/// executes the same seeded kill (see
/// `runtime_matches_simulator_across_instance_failure_and_recovery`).
#[test]
fn runtime_failure_matrix_matches_simulator_at_every_position() {
    const MID_VERTEX: VertexId = VertexId(2);
    const TAIL_VERTEX: VertexId = VertexId(3);
    // Three on-path vertices so entry, mid and tail are distinct positions:
    // a firewall in front of a double NAT (enterprise NAT behind a
    // carrier-grade one). Every NF here keeps order-insensitive shared
    // state (counters and port *pools*, compared as multisets), so the
    // digest is comparable across substrates — a load balancer's
    // arrival-order-dependent byte counters would not be.
    let matrix_chain = || {
        LogicalDag::linear(vec![
            VertexSpec::new(
                1,
                "firewall",
                Rc::new(|| Box::new(Firewall::with_default_policy())),
            ),
            VertexSpec::new(2, "nat", Rc::new(|| Box::new(Nat::default()))),
            VertexSpec::new(3, "cgnat", Rc::new(|| Box::new(Nat::default()))),
        ])
    };

    for seed in [7u64, 19, 37] {
        let trace = trace_for(seed);
        let len = trace.len();

        // Simulator yardstick: one healthy run of the same trace.
        let mut chain = ChainController::new(matrix_chain(), ChainConfig::default(), seed).unwrap();
        chain.inject_trace(&trace);
        chain.run();
        let metrics = chain.metrics();
        assert_eq!(metrics.sink_duplicates, 0);
        let mut sim_ids = chain.delivered_ids();
        sim_ids.sort_unstable();
        let sim_state = sim_digest(chain.store.with(|s| s.entries()));

        let mut gen = FaultGen::new(seed);
        let plans = [
            ("entry", gen.kill_plan(FW_VERTEX, 1, len)),
            ("mid", gen.kill_plan(MID_VERTEX, 1, len)),
            ("tail", gen.kill_plan(TAIL_VERTEX, 1, len)),
            ("root", gen.root_kill_plan(len)),
        ];
        for (position, plan) in plans {
            let rt_cfg = RuntimeConfig::with_batch_size(16).with_fault(plan.clone());
            let report =
                run_chain_realtime(&matrix_chain(), ChainConfig::default(), &rt_cfg, &trace)
                    .unwrap();
            let inv = report.invariants.as_ref().expect("sentinel on by default");
            assert!(
                inv.ok(),
                "seed {seed} {position}: sentinel violations: {:?}",
                inv.violations
            );
            assert_eq!(
                report.duplicates, 0,
                "seed {seed} {position}: runtime sink saw duplicates"
            );
            let fault = report.fault.as_ref().expect("fault report present");
            assert!(
                fault.aborts.is_empty(),
                "seed {seed} {position}: failover aborted: {:?}",
                fault.aborts
            );
            if position == "root" {
                let takeover = fault.root_takeover.expect("takeover record");
                assert_eq!(takeover.killed_at, plan.root_kill.unwrap());
            } else {
                assert_eq!(
                    fault.recoveries.len(),
                    1,
                    "seed {seed} {position}: failover did not run"
                );
                assert!(fault.recoveries[0].packets_replayed > 0);
            }
            let mut ids = report.delivered_ids.clone();
            ids.sort_unstable();
            assert_eq!(
                sim_ids, ids,
                "seed {seed} {position}: delivered packet sets differ"
            );
            assert_eq!(
                sim_state,
                report.shared_digest(),
                "seed {seed} {position}: final shared state differs"
            );
        }
    }
}

/// The write-behind store fast path is an amortization, not a semantic
/// change: with the buffer on (any cap) or off, the engine must deliver the
/// same packet set, raise the same alerts and leave the same shared-state
/// digest — across seeds, with the sentinel watching every run.
#[test]
fn write_behind_preserves_chain_output_equivalence() {
    let run = |trace: &Trace, write_behind: bool, store_batch: usize| {
        let cfg = RuntimeConfig::with_batch_size(16)
            .with_write_behind(write_behind)
            .with_store_batch(store_batch);
        let report =
            run_chain_realtime(&firewall_nat(), ChainConfig::default(), &cfg, trace).unwrap();
        let inv = report.invariants.as_ref().expect("sentinel on by default");
        assert!(inv.ok(), "sentinel violations: {:?}", inv.violations);
        assert_eq!(report.duplicates, 0);
        let mut ids = report.delivered_ids.clone();
        ids.sort_unstable();
        let alerts: Vec<String> = report.alerts().into_iter().map(|(_, m)| m).collect();
        (ids, alerts, report.shared_digest())
    };

    for seed in [13u64, 29, 53] {
        let trace = trace_for(seed);
        let off = run(&trace, false, 0);
        assert!(!off.0.is_empty(), "seed {seed}: delivered nothing");
        // Buffer tracking the ring batch, a tiny cap (drains mid-batch) and
        // an oversized cap (drains only at barriers) must all be invisible.
        for cap in [0usize, 2, 512] {
            let on = run(&trace, true, cap);
            assert_eq!(off.0, on.0, "seed {seed} cap {cap}: delivered sets differ");
            assert_eq!(off.1, on.1, "seed {seed} cap {cap}: alert multisets differ");
            assert_eq!(off.2, on.2, "seed {seed} cap {cap}: shared digests differ");
        }
    }
}

#[test]
fn runtime_without_scaling_matches_the_ideal_chain() {
    let trace = trace_for(31);
    let report = run_chain_realtime(
        &firewall_nat(),
        ChainConfig::default(),
        &RuntimeConfig::with_batch_size(32),
        &trace,
    )
    .unwrap();
    assert_eq!(report.duplicates, 0);
    let inv = report.invariants.as_ref().expect("sentinel on by default");
    assert!(inv.ok(), "sentinel violations: {:?}", inv.violations);

    // The paper's correctness criterion: the physical chain's observable
    // behaviour equals the ideal single-instance, infinite-capacity chain's.
    let ideal = run_ideal_chain(&firewall_nat(), &trace);
    let alerts = report.alerts();
    let violations = coe_violations(
        &ideal,
        &report.delivered_ids,
        report.duplicates,
        &alerts,
        false,
    );
    assert!(violations.is_empty(), "COE violations: {violations:?}");
}
