//! Quickstart: deploy a three-NF CHC chain, push a synthetic trace through
//! it, and print per-instance latency/throughput plus the chain's alerts.
//!
//! Run with: `cargo run --example quickstart`

use chc::prelude::*;
use chc_core::LogicalDag;
use chc_store::VertexId;
use std::rc::Rc;

fn main() {
    // 1. Describe the logical chain: NAT → portscan detector → load balancer.
    let dag = LogicalDag::linear(vec![
        VertexSpec::new(1, "nat", Rc::new(|| Box::new(Nat::default()))),
        VertexSpec::new(
            2,
            "portscan",
            Rc::new(|| Box::new(PortscanDetector::default())),
        ),
        VertexSpec::new(
            3,
            "lb",
            Rc::new(|| Box::new(LoadBalancer::with_default_backends())),
        ),
    ]);

    // 2. Deploy it with the full CHC state-management design (externalized
    //    state, caching, non-blocking updates).
    let config = ChainConfig::default();
    let mut chain = ChainController::new(dag, config, 42).expect("valid chain");

    // 3. Generate a synthetic trace (the paper uses campus→EC2 captures; see
    //    DESIGN.md for the substitution) with a few port scanners in it.
    let trace = TraceGenerator::new(TraceConfig::small(42).with_scanners(0.1)).generate();
    println!("input trace: {:?}", trace.stats());

    // 4. Run the chain to completion and inspect what happened.
    chain.inject_trace(&trace);
    chain.run();
    let metrics = chain.metrics();

    println!("\nper-instance results:");
    for inst in &metrics.instances {
        println!(
            "  vertex {:?} instance {:?}: {} packets, median proc {:.2} us, {:.2} Gbps",
            inst.vertex,
            inst.instance,
            inst.processed,
            inst.proc_time.p50.as_micros_f64(),
            inst.throughput_gbps
        );
    }
    println!(
        "\nend host received {} packets ({} duplicates)",
        metrics.sink_delivered, metrics.sink_duplicates
    );
    println!(
        "root logged {} packets, deleted {}",
        metrics.root.packets_in, metrics.root.deleted
    );

    println!("\nalerts raised by the chain:");
    for (clock, alert) in metrics.alerts() {
        println!("  [{clock}] {alert}");
    }

    // 5. Shared state is externalized: read the NAT's packet counter straight
    //    from the store.
    let key = chc_store::StateKey::shared(
        VertexId(1),
        chc_store::ObjectKey::named(chc::nf::nat::PKT_COUNT),
    );
    println!(
        "\nNAT total packet counter in the store: {}",
        chain.store.with(|s| s.peek(&key))
    );
}
