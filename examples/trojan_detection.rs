//! Chain-wide ordering (R4): the Figure 2 scenario. Trojan signatures are
//! injected into the trace; the scrubber tier is partly slowed down so
//! packets reach the off-path Trojan detector out of order. With CHC's
//! chain-wide logical clocks the detector still finds every signature; with
//! observation order only (legacy frameworks) it misses some.
//!
//! Run with: `cargo run --example trojan_detection`

use chc::prelude::*;
use chc_core::LogicalDag;
use chc_store::VertexId;
use std::rc::Rc;

fn run_detector(use_chain_clocks: bool, trace: &Trace) -> usize {
    let detector: Rc<dyn Fn() -> Box<dyn chc_core::NetworkFunction>> = if use_chain_clocks {
        Rc::new(|| Box::new(TrojanDetector::new()))
    } else {
        Rc::new(|| Box::new(TrojanDetector::without_chain_clocks()))
    };
    let mut dag = LogicalDag::linear(vec![VertexSpec::new(
        1,
        "scrubber",
        Rc::new(|| Box::new(Scrubber::new())),
    )
    .with_parallelism(3)]);
    let trojan = dag.add_vertex(VertexSpec::new(2, "trojan-detector", detector).off_path());
    dag.add_edge(VertexId(1), trojan);

    let mut chain = ChainController::new(dag, ChainConfig::default(), 4).unwrap();
    chain.inject_trace(trace);
    // Two of the three scrubber instances are slowed by resource contention.
    chain.set_straggler(VertexId(1), 0, SimDuration::from_micros(80));
    chain.set_straggler(VertexId(1), 1, SimDuration::from_micros(40));
    chain.run();
    chain
        .metrics()
        .alerts()
        .iter()
        .filter(|(_, m)| m.contains("trojan"))
        .count()
}

fn main() {
    let trace = TraceGenerator::new(
        TraceConfig {
            trojan_background_fraction: 0.1,
            ..TraceConfig::small(4)
        }
        .with_trojans(11),
    )
    .generate();
    println!(
        "trace: {} packets, {} Trojan signatures injected",
        trace.len(),
        trace.trojan_hosts.len()
    );

    let with_clocks = run_detector(true, &trace);
    let without = run_detector(false, &trace);
    println!("Trojan signatures detected with CHC chain-wide clocks: {with_clocks}/11");
    println!("Trojan signatures detected with observation order only: {without}/11");
}
