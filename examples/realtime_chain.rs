//! Run the firewall → NAT → load-balancer chain on the real-thread engine,
//! scale the NAT out mid-trace, and print throughput/latency plus the final
//! shared-state digest.
//!
//! Usage: `cargo run --release --example realtime_chain`

use chc::prelude::*;
use chc_core::LogicalDag;
use chc_core::VertexSpec;
use std::rc::Rc;

fn main() {
    let dag = LogicalDag::linear(vec![
        VertexSpec::new(
            1,
            "firewall",
            Rc::new(|| Box::new(Firewall::with_default_policy())),
        ),
        VertexSpec::new(2, "nat", Rc::new(|| Box::new(Nat::default()))),
        VertexSpec::new(
            3,
            "lb",
            Rc::new(|| Box::new(LoadBalancer::with_default_backends())),
        ),
    ]);

    let trace = TraceGenerator::new(TraceConfig::small(7)).generate();
    println!("trace: {} packets", trace.len());

    // Scale the NAT from one to two instances halfway through the trace.
    // The cut is keyed on the logical clock, so it lands on the same packet
    // on every run (and on the simulator).
    let cut = (trace.len() / 2) as u64;
    let rt_cfg = RuntimeConfig::with_batch_size(32).with_scale(VertexId(2), cut);

    let report =
        run_chain_realtime(&dag, ChainConfig::default(), &rt_cfg, &trace).expect("valid chain");

    let latency = report.latency_summary();
    println!(
        "delivered {} / {} packets ({} duplicates) in {:?}",
        report.delivered, report.injected, report.duplicates, report.elapsed
    );
    println!(
        "throughput: {:.0} pps, {:.3} Gbps",
        report.pps(),
        report.gbps()
    );
    println!("root→sink latency: p50={} p95={}", latency.p50, latency.p95);
    for inst in &report.instances {
        println!(
            "  {} {}: processed {} (dropped {}), {} input batches",
            inst.vertex, inst.instance, inst.processed, inst.dropped_by_nf, inst.batches_in
        );
    }
    println!(
        "store: {} ops across shards {:?}",
        report.store_ops, report.store_ops_per_shard
    );
    if let Some(telemetry) = &report.telemetry {
        println!("latency decomposition (mean per packet):");
        for stage in &telemetry.stages {
            println!(
                "  vertex {}: queue {:.1} us + service {:.1} us + store {:.1} us",
                stage.vertex.0,
                stage.queue.mean_ns / 1e3,
                stage.service.mean_ns / 1e3,
                stage.store.mean_ns / 1e3
            );
        }
        println!(
            "  sink wait {:.1} us; components sum to {:.1} us vs e2e mean {:.1} us",
            telemetry.sink_wait.mean_ns / 1e3,
            telemetry.decomposed_mean_ns() / 1e3,
            report.latency.mean() / 1e3
        );
    }
    println!("shared state digest:");
    for (key, value) in report.shared_digest() {
        let rendered = if value.len() > 60 {
            format!("{}…", value.chars().take(60).collect::<String>())
        } else {
            value
        };
        println!("  {key} = {rendered}");
    }
}
