//! Safe fault recovery (R1/R6): crash an NF instance, the root and the
//! datastore in turn, recover each, and show that the end host never sees
//! duplicates and shared state survives.
//!
//! Run with: `cargo run --example fault_recovery`

use chc::prelude::*;
use chc_core::LogicalDag;
use chc_store::{ObjectKey, StateKey, VertexId};
use std::rc::Rc;

fn main() {
    let dag = LogicalDag::linear(vec![
        VertexSpec::new(1, "nat", Rc::new(|| Box::new(Nat::default()))),
        VertexSpec::new(
            2,
            "portscan",
            Rc::new(|| Box::new(PortscanDetector::default())),
        ),
    ]);
    let mut chain = ChainController::new(dag, ChainConfig::default(), 99).unwrap();
    let trace = TraceGenerator::new(TraceConfig::small(99)).generate();
    chain.inject_trace(&trace);

    let quarter = |i: usize| VirtualTime::from_nanos(trace.packets[trace.len() * i / 4].arrival_ns);

    // 1. NF failure: the NAT crashes, a failover instance takes over its
    //    externalized state and the root replays in-flight packets to it.
    chain.run_until(quarter(1));
    chain.checkpoint_store();
    println!("[{}] NAT instance crashes", chain.now());
    chain.fail_instance(VertexId(1), 0);
    let failover = chain.failover_instance(VertexId(1), 0);
    println!("    failover instance {failover} takes over, replay requested");

    // 2. Datastore failure: shared state is rebuilt from the checkpoint plus
    //    the instances' write-ahead logs; per-flow state comes back from the
    //    instances' caches.
    chain.run_until(quarter(2));
    let counter = StateKey::shared(VertexId(1), ObjectKey::named(chc::nf::nat::PKT_COUNT));
    let before = chain.store.with(|s| s.peek(&counter));
    println!(
        "[{}] datastore instance crashes (NAT pkt_count = {before})",
        chain.now()
    );
    chain.fail_store();
    let report = chain.recover_store();
    let after = chain.store.with(|s| s.peek(&counter));
    println!(
        "    recovered: case {}, {} ops replayed, {} per-flow objects restored, pkt_count = {after}",
        report.case, report.replayed_ops, report.per_flow_restored
    );

    // 3. Root failure: the failover root reads the persisted clock and
    //    resumes; packets logged only at the failed root are lost exactly as
    //    network drops would be.
    chain.run_until(quarter(3));
    println!("[{}] root crashes", chain.now());
    chain.fail_root();
    chain.recover_root();
    println!("    failover root resumes from the persisted logical clock");

    chain.run();
    let metrics = chain.metrics();
    println!(
        "\nend of trace: {} packets delivered, {} duplicates at the end host, {} alerts",
        metrics.sink_delivered,
        metrics.sink_duplicates,
        metrics.alerts().len()
    );
    assert_eq!(
        metrics.sink_duplicates, 0,
        "R6: recovery must never duplicate output"
    );
}
