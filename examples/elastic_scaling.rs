//! Elastic scaling: add a second NAT instance mid-trace and move a slice of
//! flows onto it with the Figure 4 handover protocol (loss-free and
//! order-preserving), then verify chain output equivalence.
//!
//! Run with: `cargo run --example elastic_scaling`

use chc::prelude::*;
use chc_core::coe::{coe_violations, run_ideal_chain};
use chc_core::LogicalDag;
use chc_packet::Scope;
use chc_store::VertexId;
use std::collections::BTreeSet;
use std::rc::Rc;

fn chain_dag() -> LogicalDag {
    LogicalDag::linear(vec![
        VertexSpec::new(1, "nat", Rc::new(|| Box::new(Nat::default()))),
        VertexSpec::new(
            2,
            "portscan",
            Rc::new(|| Box::new(PortscanDetector::default())),
        ),
    ])
}

fn main() {
    let trace = TraceGenerator::new(TraceConfig::small(7)).generate();
    let ideal = run_ideal_chain(&chain_dag(), &trace);

    let mut chain = ChainController::new(chain_dag(), ChainConfig::default(), 7).unwrap();
    chain.inject_trace(&trace);

    // Process half of the trace on one NAT instance.
    let mid = trace.packets[trace.len() / 2].arrival_ns;
    chain.run_until(VirtualTime::from_nanos(mid));
    println!("half-way point reached at {}", chain.now());

    // Scale up and reallocate 50 flows to the new instance. The old instance
    // flushes and releases their per-flow state; the new instance buffers
    // their packets until the handover completes.
    let (new_instance, new_index) = chain.scale_up(VertexId(1));
    let keys: Vec<_> = trace
        .packets
        .iter()
        .map(|p| Scope::FiveTuple.key_of(p))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .take(50)
        .collect();
    let start = chain.now();
    chain.move_flows(VertexId(1), &keys, new_index);
    chain.run();

    let handover = chain
        .with_instance(VertexId(1), new_index, |a| a.handover_completed_at)
        .flatten();
    println!(
        "moved {} flow groups to instance {new_instance}; handover completed in {:.3} ms",
        keys.len(),
        handover.map(|t| (t - start).as_millis_f64()).unwrap_or(0.0)
    );

    let metrics = chain.metrics();
    for inst in metrics.vertex(VertexId(1)) {
        println!(
            "  NAT instance {:?} processed {} packets (median {:.2} us)",
            inst.instance,
            inst.processed,
            inst.proc_time.p50.as_micros_f64()
        );
    }

    let violations = coe_violations(
        &ideal,
        &chain.delivered_ids(),
        metrics.sink_duplicates,
        &metrics.alerts(),
        false,
    );
    println!(
        "chain output equivalence after scaling: {}",
        if violations.is_empty() {
            "HOLDS".to_string()
        } else {
            format!("VIOLATED: {violations:?}")
        }
    );
}
