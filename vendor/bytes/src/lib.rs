//! Offline stand-in for the `bytes` crate.
//!
//! Provides the reading (`Buf` over `&[u8]`) and writing (`BufMut` over
//! `BytesMut`) surface the wire codec uses, with big-endian integer accessors
//! matching the real crate's defaults. `Bytes`/`BytesMut` are simple
//! `Vec<u8>` wrappers — no reference-counted zero-copy splitting, which
//! nothing in this workspace needs.

use std::ops::{Deref, DerefMut};

/// Sequential big-endian reads from a byte source.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copy out the next `N` bytes.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }
    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }
    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }
    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let (head, rest) = self.split_at(N);
        *self = rest;
        head.try_into().expect("split_at returned N bytes")
    }
}

/// Sequential big-endian writes into a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// A mutable, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Create an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Grow or shrink to `new_len`, filling with `fill`.
    pub fn resize(&mut self, new_len: usize, fill: u8) {
        self.0.resize(new_len, fill);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16(0x0800);
        buf.put_u32(0xdead_beef);
        buf.put_u64(42);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0800);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_and_resize() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_slice(&[1, 2, 3]);
        buf.resize(6, 0);
        assert_eq!(&buf[..], &[1, 2, 3, 0, 0, 0]);
        let mut r: &[u8] = &buf;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }
}
