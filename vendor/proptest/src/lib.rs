//! Offline stand-in for `proptest`.
//!
//! Supports the combinators this workspace's property tests use: `any`,
//! `Just`, integer-range strategies, tuple strategies, `prop_map`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert*` macros. Cases are
//! generated from a fixed-seed RNG, so failures are reproducible; shrinking
//! is not implemented (a failing case panics with the usual assert message).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each `proptest!` test runs.
pub const CASES: usize = 256;

/// A generator of random values.
pub trait Strategy: Sized {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

/// Object-safe view of [`Strategy`], used by `prop_oneof!`.
pub trait StrategyObj<V> {
    /// Generate one value.
    fn generate_obj(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// Strategy returning a fixed value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn StrategyObj<V>>>,
}

impl<V> Union<V> {
    /// Build from the `prop_oneof!` arms.
    pub fn new(options: Vec<Box<dyn StrategyObj<V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate_obj(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

/// The full-range strategy for a type.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Seed the case RNG (fixed so failures reproduce across runs).
pub fn case_rng() -> StdRng {
    StdRng::seed_from_u64(0x70726f70_74657374)
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` runs
/// [`CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::case_rng();
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($arm) as Box<dyn $crate::StrategyObj<_>>),+])
    };
}

/// Assert within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The glob import property tests start with.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        #[test]
        fn ranges_respected(x in 10u8..20, y in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y == 1u8 || y == 2u8);
        }

        #[test]
        fn map_applies(v in (0u8..10).prop_map(|x| x as u32 * 2)) {
            prop_assert!(v % 2 == 0 && v < 20);
        }
    }
}
