//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's API shape: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and a poisoned
//! lock is recovered transparently instead of propagating the poison — which
//! matches parking_lot's "no poisoning" semantics closely enough for this
//! workspace.

use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
