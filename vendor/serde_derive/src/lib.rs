//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes data with serde yet — the derives exist so
//! the type definitions stay source-compatible with the real crate. These
//! macros therefore accept the same syntax (including `#[serde(...)]`
//! attributes) and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
