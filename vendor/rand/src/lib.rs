//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! Provides exactly the surface this workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`, `gen_range`
//! (half-open and inclusive integer/float ranges) and `gen_bool` — backed by
//! a xoshiro256++ generator seeded through SplitMix64.
//!
//! The workspace only relies on *determinism per seed*, never on matching the
//! real `rand` value stream, so a different (but stable) stream is fine.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Create an RNG from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's full range.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Sample one value from the range. Panics on empty ranges, like `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sampling of `[0, bound)` via Lemire-style rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the distribution exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        // Split the 64-bit word into the value modulo the bound; reject the
        // short tail so every residue is equally likely.
        if v >= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = bounded_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                let off = bounded_u64(rng, span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from the type's full range (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as real rand does for small seeds.
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u16 = rng.gen_range(10_000..60_000);
            assert!((10_000..60_000).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
