//! Offline stand-in for `criterion`.
//!
//! Implements the small API surface the workspace's benches use —
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple calibrated wall-clock loop instead of criterion's full
//! statistical machinery. Results are printed as `name  time: [median]` lines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box` as well as
/// `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target measurement time per benchmark.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(200);

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            samples: 10,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, 10, f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.samples, f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, run `self.iters` times.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate the per-sample iteration count on a warm-up run.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = (b.elapsed / b.iters.max(1) as u32).max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE_TIME.as_nanos() / samples.max(1) as u128)
        .checked_div(per_iter.as_nanos())
        .unwrap_or(1)
        .clamp(1, 10_000_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = times[times.len() / 2];
    println!(
        "  {name:<32} time: [{}]  ({} iters x {} samples)",
        fmt_secs(median),
        iters,
        samples
    );
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Collect benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("incr", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }
}
