//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derives from the local
//! `serde_derive` shim so that `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No serialization
//! machinery is provided; nothing in the workspace performs serde-based
//! serialization (JSON output is written by hand in `chc-bench`).

pub use serde_derive::{Deserialize, Serialize};
